//! The full-system simulator: cores + LLC + memory controller + DRAM +
//! mitigation mechanism + BreakHammer, wired together and clocked.
//!
//! The outer simulation loop runs in the DRAM command-clock domain (one
//! memory-controller tick per iteration); the cores run at the CPU frequency
//! and are ticked `cpu_freq / dram_freq` times per memory cycle using a
//! fractional accumulator, matching Table 1's 4.2 GHz cores over DDR5-4800.
//!
//! Two interchangeable kernels drive the clock (selected by
//! [`SchedulerKind`]): the reference per-cycle kernel executes the loop body
//! at every DRAM cycle, while the event-driven kernel asks each layer for its
//! next-event horizon — the memory controller's earliest issuable command,
//! the earliest pending LLC fill, each core's stall wake-up, BreakHammer's
//! next window edge — and jumps the clock straight to the minimum, replaying
//! the skipped cycles' counter increments in bulk. The two kernels produce
//! bit-identical [`SimulationResult`]s; `tests/scheduler_differential.rs`
//! enforces this differentially.

use crate::config::{ChannelStepping, FrontEndKind, SchedulerKind, SystemConfig};
use crate::result::{
    AttackOutcome, ChannelBreakdown, ChannelLaneState, CoreLaneState, CorePerformance,
    LivelockReport, SimulationResult, TerminationReason, VictimReport,
};
use crate::watchdog::{ProgressSample, StateDigest, Watchdog};
use bh_core::BreakHammer;
use bh_cpu::{
    CompiledTrace, Core, CoreConfig, CoreEngine, CoreProgress, CoreStats, LastLevelCache,
    MissToken, StallInfo, Trace,
};
use bh_dram::{
    classify_flips, Cycle, DramChannel, RowAddr, RowHammerTracker, SuccessCriterion, ThreadId,
};
use bh_mem::{MemRequest, MemorySystem};
use std::collections::VecDeque;
use std::ops::Range;

/// The CPU/DRAM clock-domain crossing: a fractional accumulator that hands
/// out the CPU-cycle values to tick for each DRAM cycle. Both kernels drive
/// the same accumulator arithmetic, so their clock-domain behaviour is
/// identical by construction.
#[derive(Debug, Clone)]
struct CpuClock {
    /// CPU cycles per DRAM command-clock cycle.
    ratio: f64,
    /// Fractional CPU cycles accumulated but not yet ticked.
    acc: f64,
    /// The CPU-cycle value of the next tick.
    next_cpu_cycle: Cycle,
}

impl CpuClock {
    fn new(ratio: f64) -> Self {
        CpuClock { ratio, acc: 0.0, next_cpu_cycle: 0 }
    }

    /// The CPU-cycle value the next tick will carry.
    fn next_cpu_cycle(&self) -> Cycle {
        self.next_cpu_cycle
    }

    /// Advances the accumulator by one DRAM cycle and returns the range of
    /// CPU-cycle values to tick during it (possibly empty).
    fn tick_range(&mut self) -> Range<Cycle> {
        self.acc += self.ratio;
        let start = self.next_cpu_cycle;
        while self.acc >= 1.0 {
            self.acc -= 1.0;
            self.next_cpu_cycle += 1;
        }
        start..self.next_cpu_cycle
    }

    /// Advances through `dram_cycles` DRAM cycles and returns how many CPU
    /// ticks elapse in total (the event-driven kernel's bulk skip).
    fn advance(&mut self, dram_cycles: u64) -> u64 {
        let mut ticks = 0;
        for _ in 0..dram_cycles {
            let range = self.tick_range();
            ticks += range.end - range.start;
        }
        ticks
    }

    /// Number of DRAM cycles (>= 1) until the DRAM cycle whose tick batch
    /// contains the CPU cycle `target` (which must not have been ticked yet).
    fn dram_cycles_until(&self, target: Cycle) -> u64 {
        let mut probe = self.clone();
        let mut cycles = 0u64;
        loop {
            cycles += 1;
            if probe.tick_range().end > target {
                return cycles;
            }
        }
    }
}

/// The CPU front-end of a [`System`]: either the per-object reference model
/// (one [`Core`] per thread, plus the kernel-side hard-stall bookkeeping it
/// needs) or the data-oriented [`CoreEngine`], selected by
/// [`FrontEndKind`]. Both expose the same epoch/progress/absorb surface to
/// the simulation loop and produce bit-identical results
/// (`tests/front_end_differential.rs`).
#[derive(Debug)]
enum FrontEnd {
    /// Reference model, driven exactly as the pre-engine kernel drove its
    /// `Vec<Core>`: hard-stalled cores (window full behind an incomplete
    /// miss) are not ticked — their cycles accrue as debt and replay in bulk
    /// when the miss completes.
    Legacy { cores: Vec<Core>, stalled_on: Vec<Option<MissToken>>, stall_debt: Vec<u64> },
    /// The SoA engine (owns its hard-stall bookkeeping internally; boxed so
    /// the enum's two variants are size-balanced).
    Engine(Box<CoreEngine>),
}

impl FrontEnd {
    fn new(kind: FrontEndKind, config: CoreConfig, traces: &[CompiledTrace], target: u64) -> Self {
        match kind {
            FrontEndKind::Legacy => {
                let cores: Vec<Core> = traces
                    .iter()
                    .enumerate()
                    .map(|(i, t)| Core::new(ThreadId(i), config, t.to_trace(), target))
                    .collect();
                let n = cores.len();
                FrontEnd::Legacy { cores, stalled_on: vec![None; n], stall_debt: vec![0; n] }
            }
            FrontEndKind::Engine => {
                FrontEnd::Engine(Box::new(CoreEngine::new(config, traces.to_vec(), target)))
            }
        }
    }

    fn finished(&self, core: usize) -> bool {
        match self {
            FrontEnd::Legacy { cores, .. } => cores[core].finished(),
            FrontEnd::Engine(engine) => engine.finished(core),
        }
    }

    fn retired_instructions(&self, core: usize) -> u64 {
        match self {
            FrontEnd::Legacy { cores, .. } => cores[core].retired_instructions(),
            FrontEnd::Engine(engine) => engine.retired_instructions(core),
        }
    }

    /// True while `core` is hard-stalled on an incomplete miss. The two arms
    /// are pinned equal by the engine's differential proptest
    /// (`legacy.stalled_on[i].is_some() == engine.is_hard_stalled(i)`), so
    /// the watchdog state digest built from this flag is front-end-invariant.
    fn is_hard_stalled(&self, core: usize) -> bool {
        match self {
            FrontEnd::Legacy { stalled_on, .. } => stalled_on[core].is_some(),
            FrontEnd::Engine(engine) => engine.is_hard_stalled(core),
        }
    }

    /// Steps every core through the CPU cycles of one epoch, in core-index
    /// order within each cycle (see `CoreEngine::tick_epoch` for the batch
    /// contract; the legacy arm is the shared `bh_cpu::tick_epoch_legacy`
    /// driver that contract mirrors — the same driver the engine's
    /// differential tests run against).
    fn tick_epoch(&mut self, cycles: Range<Cycle>, llc: &mut LastLevelCache) {
        match self {
            FrontEnd::Legacy { cores, stalled_on, stall_debt } => {
                bh_cpu::tick_epoch_legacy(cores, stalled_on, stall_debt, cycles, llc);
            }
            FrontEnd::Engine(engine) => engine.tick_epoch(cycles, llc),
        }
    }

    /// Classifies every core for the horizon scan: returns `true` as soon as
    /// any core is `Active` (leaving `buf` empty — the kernel steps the very
    /// next cycle and never reads it), otherwise fills `buf` with each
    /// core's classification. The engine arm batches the window-head scan
    /// (SIMD where the CPU supports it); the legacy arm is the per-core loop
    /// the kernels historically ran.
    fn progress_batch(
        &self,
        llc: &LastLevelCache,
        next_cycle: Cycle,
        buf: &mut Vec<CoreProgress>,
    ) -> bool {
        match self {
            FrontEnd::Legacy { cores, .. } => {
                buf.clear();
                for core in cores {
                    let p = core.progress(llc, next_cycle);
                    if matches!(p, CoreProgress::Active) {
                        buf.clear();
                        return true;
                    }
                    buf.push(p);
                }
                false
            }
            FrontEnd::Engine(engine) => engine.progress_batch(llc, next_cycle, buf),
        }
    }

    fn absorb_stall_ticks(&mut self, core: usize, ticks: u64, stall: &StallInfo) {
        match self {
            FrontEnd::Legacy { cores, .. } => cores[core].absorb_stall_ticks(ticks, stall),
            FrontEnd::Engine(engine) => engine.absorb_stall_ticks(core, ticks, stall),
        }
    }

    /// Folds outstanding hard-stall debt into the counters (end of run).
    fn settle(&mut self) {
        match self {
            FrontEnd::Legacy { cores, stall_debt, .. } => {
                bh_cpu::settle_legacy(cores, stall_debt);
            }
            FrontEnd::Engine(engine) => engine.settle(),
        }
    }

    fn stats(&self, core: usize) -> CoreStats {
        match self {
            FrontEnd::Legacy { cores, .. } => cores[core].stats().clone(),
            FrontEnd::Engine(engine) => engine.stats(core),
        }
    }

    fn perf(&self, core: usize) -> CorePerformance {
        let stats = self.stats(core);
        CorePerformance {
            thread: ThreadId(core),
            instructions: stats.retired_instructions,
            cycles: stats.cycles,
            ipc: stats.ipc(),
            finished: self.finished(core),
        }
    }
}

/// The epoch-parallel kernel's decision for what follows the current step
/// (see [`System::plan_next`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// Advance the channels independently up to (excluding) `h`, then step
    /// at `h` through the serial path.
    Epoch(Cycle),
    /// No epoch is possible or profitable: jump to this cycle through the
    /// serial skip path (clamped to `[dram_cycle + 1, max]` by the caller).
    Skip(Cycle),
}

/// A fully-wired simulated system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    front: FrontEnd,
    llc: LastLevelCache,
    /// The sharded memory system: one controller + mitigation instance per
    /// channel, one shared BreakHammer observer.
    memory: MemorySystem,
    /// Cores that must finish for the simulation to end (benign cores; the
    /// attacker's progress is irrelevant, footnote 9 of the paper).
    required: Vec<usize>,
    /// Miss completions scheduled for a future DRAM cycle.
    pending_fills: VecDeque<(Cycle, u64)>,
    /// Cached minimum completion cycle in `pending_fills` (`Cycle::MAX` when
    /// empty): the per-step completion walk and the next-event fill horizon
    /// both skip the deque entirely while nothing is due.
    pending_fills_min: Cycle,
    next_writeback_id: u64,
    /// The BreakHammer [`quota_version`](BreakHammer::quota_version) whose
    /// quotas were last propagated into the LLC (`None` before the first
    /// propagation). While the version is unchanged the per-step propagation
    /// and the `next_event` quota-sync check are skipped — the LLC mirror is
    /// known to be current.
    synced_quota_version: Option<u64>,
    /// Recycled buffer for draining controller responses each step.
    response_buf: Vec<bh_mem::MemResponse>,
    /// Recycled per-core progress classifications from the latest
    /// [`System::next_event`] (empty whenever the next event is pinned to
    /// the very next cycle, where the skip replay never runs).
    progress_buf: Vec<CoreProgress>,
    /// Recycled buffer for draining LLC outgoing requests each step.
    outgoing_buf: Vec<bh_cpu::OutgoingRequest>,
    /// Victim rows to report end-of-run disturbance for, as
    /// `(channel, row)` pairs (registered via [`System::watch_victims`]).
    watched_victims: Vec<(usize, RowAddr)>,
    /// What counts as a successful attack against the watched victim rows
    /// (set via [`System::with_success_criterion`], usually from the
    /// workload's victim layout).
    success_criterion: SuccessCriterion,
    /// Forward-progress watchdog, observed at fixed DRAM-cycle epoch
    /// boundaries by every kernel (see [`crate::WatchdogConfig`]).
    watchdog: Watchdog,
    /// The watchdog's verdict when it fired (`None` on healthy runs).
    verdict: Option<TerminationReason>,
    /// Livelock snapshot captured at the verdict boundary.
    livelock: Option<LivelockReport>,
}

impl System {
    /// Builds a system running `traces` (one per core), compiling each trace
    /// first. Callers that run the same workload under many configurations
    /// should compile once and use [`System::with_compiled`] so every run
    /// shares the compiled records instead of deep-copying them.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, the trace count does not match
    /// the core count, or `required` references an unknown core.
    pub fn new(config: SystemConfig, traces: &[Trace], required: Vec<usize>) -> Self {
        let compiled: Vec<CompiledTrace> = traces.iter().map(Trace::compile).collect();
        System::with_compiled(config, &compiled, required)
    }

    /// Builds a system replaying pre-compiled traces (one per core), sharing
    /// their record storage with the caller. `required` lists the cores whose
    /// instruction budget must complete before the run ends; pass every
    /// benign core there.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, the trace count does not match
    /// the core count, or `required` references an unknown core.
    pub fn with_compiled(
        config: SystemConfig,
        traces: &[CompiledTrace],
        required: Vec<usize>,
    ) -> Self {
        config.validate().expect("invalid system configuration");
        assert_eq!(
            traces.len(),
            config.cores,
            "need exactly one trace per core ({} cores, {} traces)",
            config.cores,
            traces.len()
        );
        assert!(required.iter().all(|r| *r < config.cores), "required core index out of range");

        // Build one mitigation instance per memory channel (the paper — and
        // BlockHammer before it — provisions per-channel trackers). Channel 0
        // uses the configured seed unchanged so single-channel systems are
        // bit-identical to the pre-multichannel simulator; further channels
        // derive their probabilistic seeds by offset.
        let channels = config.geometry.channels.max(1);
        let mechanisms: Vec<_> = (0..channels)
            .map(|ch| {
                config.mechanism.build(
                    &config.geometry,
                    &config.timing,
                    config.nrh,
                    config.seed.wrapping_add(ch as u64),
                )
            })
            .collect();
        // REGA adjusts the DRAM timing parameters (identically per channel).
        let timing = config.timing.clone().with_adjustment(&mechanisms[0].timing_adjustment());
        let breakhammer = if config.breakhammer {
            Some(BreakHammer::new(
                config.effective_breakhammer_config(),
                mechanisms[0].attribution(),
            ))
        } else {
            None
        };
        let instances = mechanisms
            .into_iter()
            .enumerate()
            .map(|(ch, mechanism)| {
                let tracker = RowHammerTracker::with_fault(
                    config.geometry.clone(),
                    config.nrh,
                    config.device.blast_radius,
                    config.fault.model,
                    config.seed,
                    ch,
                );
                let channel = DramChannel::with_config(
                    config.geometry.clone(),
                    timing.clone(),
                    config.energy.clone(),
                    config.device.clone(),
                    Some(tracker),
                );
                (channel, mechanism)
            })
            .collect();
        let memory = MemorySystem::new(config.memctrl.clone(), instances, breakhammer);

        let llc = LastLevelCache::new(config.cache.clone(), config.cores);
        let front =
            FrontEnd::new(config.front_end, config.core, traces, config.instructions_per_core);

        // The auto-derived watchdog epoch must span BreakHammer's window (a
        // quota-starved thread legitimately waits out a rotation for its
        // refill), so the effective window length feeds the derivation.
        let bh_window =
            config.breakhammer.then(|| config.effective_breakhammer_config().window_cycles);
        let watchdog = Watchdog::new(&config.watchdog, bh_window);

        System {
            config,
            front,
            llc,
            memory,
            required,
            pending_fills: VecDeque::new(),
            pending_fills_min: Cycle::MAX,
            next_writeback_id: 1 << 60,
            synced_quota_version: None,
            response_buf: Vec::new(),
            progress_buf: Vec::new(),
            outgoing_buf: Vec::new(),
            watched_victims: Vec::new(),
            success_criterion: SuccessCriterion::default(),
            watchdog,
            verdict: None,
            livelock: None,
        }
    }

    /// Registers victim rows (as `(channel, row)` pairs, e.g. a
    /// `WorkloadMix`'s `victim_rows`) whose end-of-run disturbance the
    /// result should report in `SimulationResult::victims`. Channels and row
    /// indices are reduced to the configured geometry, so layouts computed
    /// for a larger geometry degrade gracefully on test-scale systems.
    pub fn watch_victims(mut self, victims: impl IntoIterator<Item = (usize, RowAddr)>) -> Self {
        let channels = self.config.geometry.channels.max(1);
        let rows = self.config.geometry.rows_per_bank;
        self.watched_victims = victims
            .into_iter()
            .map(|(channel, row)| {
                (channel % channels, RowAddr { bank: row.bank, row: row.row % rows })
            })
            .collect();
        self.watched_victims.sort_unstable();
        self.watched_victims.dedup();
        self
    }

    /// Sets what counts as a successful attack against the watched victim
    /// rows (usually the workload's `VictimLayout::success_criterion`).
    pub fn with_success_criterion(mut self, criterion: SuccessCriterion) -> Self {
        self.success_criterion = criterion;
        self
    }

    /// The memory system (for inspection in tests).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// The LLC (for inspection in tests).
    pub fn llc(&self) -> &LastLevelCache {
        &self.llc
    }

    fn required_finished(&self) -> bool {
        self.required.iter().all(|i| self.front.finished(*i))
    }

    /// Watchdog observation at the top of every kernel iteration. Returns
    /// `true` — after recording the verdict and, for livelocks, the
    /// diagnostic snapshot — when the run must stop now. A no-op (one integer
    /// compare) away from epoch boundaries, so the per-cycle kernel can
    /// afford to call it every cycle.
    ///
    /// Every kernel reaches each boundary cycle as a step cycle (event
    /// horizons are clamped to [`Watchdog::horizon_cap`]; undershooting a
    /// horizon is behaviour-neutral by the kernels' equivalence contract),
    /// and the sample reads step-invariant state only, so the verdict and
    /// snapshot are bit-identical across kernels, stepping modes and
    /// front-ends.
    fn watchdog_fires(&mut self, dram_cycle: Cycle) -> bool {
        if !self.watchdog.due(dram_cycle) {
            return false;
        }
        let sample = self.progress_sample();
        let Some(verdict) = self.watchdog.observe(dram_cycle, &sample) else {
            return false;
        };
        if verdict.reason == TerminationReason::Livelock {
            self.livelock = Some(self.livelock_report(
                dram_cycle,
                verdict.zero_progress_epochs,
                verdict.fixpoint,
                &sample,
            ));
        }
        self.verdict = Some(verdict.reason);
        true
    }

    /// Assembles one epoch boundary's progress sample: the global progress
    /// tuple plus the structural state digest (which deliberately excludes
    /// the served-request counters — see the `watchdog` module docs).
    fn progress_sample(&self) -> ProgressSample {
        let mut digest = StateDigest::new();
        let mut instructions_retired = 0u64;
        for core in 0..self.config.cores {
            let retired = self.front.retired_instructions(core);
            instructions_retired += retired;
            digest.write_u64(retired);
            digest.write_bool(self.front.finished(core));
            digest.write_bool(self.front.is_hard_stalled(core));
        }
        let mut reads_served = 0u64;
        let mut writes_served = 0u64;
        let mut preventive_actions = 0u64;
        for (channel, ctrl) in self.memory.controllers().iter().enumerate() {
            let stats = ctrl.stats();
            reads_served += stats.reads_served;
            writes_served += stats.writes_served;
            preventive_actions += stats.preventive_actions_total();
            digest.write_usize(ctrl.queued_requests());
            digest.write_usize(self.memory.pending_enqueue_depth(channel));
            digest.write_usize(ctrl.pending_preventive_commands());
            digest.write_usize(ctrl.mechanism().blocked_rows());
        }
        if let Some(bh) = self.memory.breakhammer() {
            for t in 0..self.config.cores {
                digest.write_bool(bh.is_suspect(ThreadId(t)));
                digest.write_usize(bh.quota(ThreadId(t)));
            }
        }
        ProgressSample {
            instructions_retired,
            reads_served,
            writes_served,
            preventive_actions,
            state_digest: digest.finish(),
        }
    }

    /// Builds the diagnostic snapshot accompanying a livelock verdict, from
    /// the same step-invariant state the sample was drawn from.
    fn livelock_report(
        &self,
        detected_at: Cycle,
        zero_progress_epochs: u32,
        fixpoint: bool,
        sample: &ProgressSample,
    ) -> LivelockReport {
        let cores = (0..self.config.cores)
            .map(|core| CoreLaneState {
                thread: ThreadId(core),
                retired: self.front.retired_instructions(core),
                finished: self.front.finished(core),
                hard_stalled: self.front.is_hard_stalled(core),
            })
            .collect();
        let channels = self
            .memory
            .controllers()
            .iter()
            .enumerate()
            .map(|(channel, ctrl)| ChannelLaneState {
                channel,
                queued: ctrl.queued_requests(),
                retry_deque: self.memory.pending_enqueue_depth(channel),
                pending_preventive: ctrl.pending_preventive_commands(),
                blocked_rows: ctrl.mechanism().blocked_rows(),
            })
            .collect();
        let suspects = self
            .memory
            .breakhammer()
            .map(|bh| (0..self.config.cores).map(|t| bh.is_suspect(ThreadId(t))).collect())
            .unwrap_or_default();
        LivelockReport {
            detected_at,
            zero_progress_epochs,
            fixpoint,
            instructions_retired: sample.instructions_retired,
            reads_served: sample.reads_served,
            writes_served: sample.writes_served,
            preventive_actions: sample.preventive_actions,
            cores,
            channels,
            suspects,
        }
    }

    /// Runs the simulation to completion and returns the measured results.
    ///
    /// Dispatches to the kernel selected by
    /// [`SystemConfig::scheduler`](crate::SystemConfig); both kernels produce
    /// bit-identical results.
    pub fn run(self) -> SimulationResult {
        match (self.config.scheduler, self.config.stepping) {
            (SchedulerKind::PerCycle, _) => self.run_per_cycle(),
            (SchedulerKind::EventDriven, ChannelStepping::Serial) => self.run_event_driven(),
            (SchedulerKind::EventDriven, ChannelStepping::Parallel) => {
                self.run_event_driven_parallel()
            }
        }
    }

    /// The reference kernel: executes [`System::step`] at every DRAM cycle.
    fn run_per_cycle(mut self) -> SimulationResult {
        let mut clock = CpuClock::new(self.config.cpu_cycles_per_dram_cycle());
        let mut dram_cycle: Cycle = 0;
        while !self.required_finished() && dram_cycle < self.config.max_dram_cycles {
            if self.watchdog_fires(dram_cycle) {
                break;
            }
            self.step(dram_cycle, &mut clock);
            dram_cycle += 1;
        }
        self.finish(dram_cycle)
    }

    /// The event-driven kernel: executes [`System::step`] only at cycles
    /// where some layer can make progress, and fast-forwards across the dead
    /// cycles in between, replaying their counter increments in bulk so the
    /// results stay bit-identical to [`System::run_per_cycle`].
    fn run_event_driven(mut self) -> SimulationResult {
        let mut clock = CpuClock::new(self.config.cpu_cycles_per_dram_cycle());
        let max = self.config.max_dram_cycles;
        let mut dram_cycle: Cycle = 0;
        while !self.required_finished() && dram_cycle < max {
            if self.watchdog_fires(dram_cycle) {
                break;
            }
            self.step(dram_cycle, &mut clock);
            if self.required_finished() {
                dram_cycle += 1;
                break;
            }
            let next = self.next_event(dram_cycle, &clock);
            // Clamp to the next watchdog epoch boundary so this kernel steps
            // there too (undershooting a horizon is only wasted work, never a
            // behaviour change — the per-cycle kernel steps every cycle).
            let next = next.clamp(dram_cycle + 1, max).min(self.watchdog.horizon_cap());
            if next > dram_cycle + 1 {
                self.skip_dead_cycles(next - dram_cycle - 1, &mut clock);
            }
            dram_cycle = next;
        }
        self.finish(dram_cycle)
    }

    /// The epoch-parallel kernel: like [`System::run_event_driven`], but
    /// whenever the memory system is the only busy layer — every core is
    /// stalled, no LLC fill is due, no BreakHammer window edge or unsynced
    /// quota intervenes — the channels advance *independently* through one
    /// epoch up to the merged horizon `h` (possibly on the worker pool, see
    /// [`MemorySystem::advance_epoch`]), and the skipped cycles' core-side
    /// counters replay in bulk exactly as in the serial skip path. The step
    /// at `h` then runs through the ordinary serial path, applying every
    /// cross-channel effect (BreakHammer replay already happened at the
    /// epoch merge; response draining, retry promotion and quota propagation
    /// happen here) in the serial order. Results are bit-identical to the
    /// serial kernels; `tests/parallel_differential.rs` and the golden
    /// digests enforce it.
    fn run_event_driven_parallel(mut self) -> SimulationResult {
        let mut clock = CpuClock::new(self.config.cpu_cycles_per_dram_cycle());
        let max = self.config.max_dram_cycles;
        // Epochs must end before the earliest cycle an in-epoch response
        // could complete an LLC fill (and thereby unstall a core): reads
        // issued at `a + 1` or later complete no earlier than
        // `a + 1 + read_latency` (the controllers run REGA-adjusted timing,
        // hence the query goes to the built channel, not the raw config).
        let read_latency = self.memory.controllers()[0].channel().timing().read_latency();
        let mut dram_cycle: Cycle = 0;
        while !self.required_finished() && dram_cycle < max {
            if self.watchdog_fires(dram_cycle) {
                break;
            }
            self.step(dram_cycle, &mut clock);
            if self.required_finished() {
                dram_cycle += 1;
                break;
            }
            match self.plan_next(dram_cycle, &clock, read_latency, max) {
                // Epochs, like serial skips, never cross a watchdog epoch
                // boundary: the step at the boundary is where the sample is
                // taken, and a shortened channel epoch is always sound (the
                // horizon contract permits undershooting).
                Plan::Epoch(h) if h.min(self.watchdog.horizon_cap()) > dram_cycle + 1 => {
                    let h = h.min(self.watchdog.horizon_cap());
                    self.memory.advance_epoch(dram_cycle, h);
                    // The interior cycles' core-side replay: identical to
                    // the serial skip except that the channel workers have
                    // already accounted their own enqueue-rejection retries.
                    self.skip_core_cycles(h - dram_cycle - 1, &mut clock);
                    dram_cycle = h;
                }
                Plan::Epoch(_) => {
                    // The boundary clamp collapsed the epoch to a single
                    // cycle: advance serially, exactly like `Plan::Skip` to
                    // the very next cycle.
                    dram_cycle += 1;
                }
                Plan::Skip(next) => {
                    let next = next.clamp(dram_cycle + 1, max).min(self.watchdog.horizon_cap());
                    if next > dram_cycle + 1 {
                        self.skip_dead_cycles(next - dram_cycle - 1, &mut clock);
                    }
                    dram_cycle = next;
                }
            }
        }
        self.finish(dram_cycle)
    }

    /// One iteration of the simulation loop at `dram_cycle` — identical for
    /// both kernels.
    fn step(&mut self, dram_cycle: Cycle, clock: &mut CpuClock) {
        self.step_inner_quota(dram_cycle);
        self.step_inner_ctrl(dram_cycle);
        self.step_inner_fill(dram_cycle);
        self.step_inner_core(clock);
        self.step_inner_out(dram_cycle);
    }

    fn step_inner_quota(&mut self, _dram_cycle: Cycle) {
        // 1. Propagate BreakHammer's current quotas into the LLC (skipped
        // while the quota version says the LLC mirror is already current).
        if let Some(bh) = self.memory.breakhammer() {
            if self.synced_quota_version == Some(bh.quota_version()) {
                return;
            }
            for t in 0..self.config.cores {
                self.llc.set_quota(ThreadId(t), bh.quota(ThreadId(t)));
            }
            self.synced_quota_version = Some(bh.quota_version());
        }
    }

    fn step_inner_ctrl(&mut self, dram_cycle: Cycle) {
        // 2. Retry requests the memory system previously rejected, then tick
        // every channel's controller.
        self.memory.retry_pending();
        self.memory.tick(dram_cycle);
    }

    fn step_inner_fill(&mut self, dram_cycle: Cycle) {
        // 3. Collect responses and complete LLC misses whose data arrived
        // (skipping the drain outright on response-free steps, the common
        // case — the controller serves at most one column command per tick).
        if self.memory.has_responses() {
            self.memory.drain_responses_into(&mut self.response_buf);
        } else {
            self.response_buf.clear();
        }
        for response in &self.response_buf {
            if response.kind.is_read() && response.id < (1 << 60) {
                // Chaos injection: drop fills completing at/after the
                // configured cycle. The MSHR stays occupied forever, so every
                // core eventually hard-stalls — the deterministic livelock
                // the watchdog tests inject. `completed_at` is identical
                // across kernels, so the drop set is too.
                if let Some(cut) = self.config.chaos.drop_fills_after {
                    if response.completed_at >= cut {
                        continue;
                    }
                }
                self.pending_fills.push_back((response.completed_at, response.id));
                self.pending_fills_min = self.pending_fills_min.min(response.completed_at);
            }
        }
        if self.pending_fills_min > dram_cycle {
            // Nothing is due yet: skip the completion walk.
            return;
        }
        // In-place, order-preserving completion of due fills (same visit
        // order as draining the queue front to back).
        let llc = &mut self.llc;
        let mut next_min = Cycle::MAX;
        self.pending_fills.retain(|(ready, token)| {
            if *ready <= dram_cycle {
                llc.complete_miss(*token);
                false
            } else {
                next_min = next_min.min(*ready);
                true
            }
        });
        self.pending_fills_min = next_min;
    }

    fn step_inner_core(&mut self, clock: &mut CpuClock) {
        // 4. Tick the cores in the CPU clock domain, one front-end epoch per
        // step: cores are stepped in core-index order within each CPU cycle,
        // so their LLC accesses drain as a deterministically ordered batch.
        // Hard-stalled cores (window full behind an incomplete miss) are not
        // ticked: their cycles accumulate as debt (inside the front-end) and
        // are replayed in bulk when their miss completes, which is the only
        // event that can change their state — completions happen in the fill
        // phase, strictly before this one.
        self.front.tick_epoch(clock.tick_range(), &mut self.llc);
    }

    fn step_inner_out(&mut self, dram_cycle: Cycle) {
        // 5. Forward new LLC fills and writebacks to their memory channel
        // (skipped outright when the epoch produced none, the common case).
        if !self.llc.has_outgoing() {
            return;
        }
        self.llc.take_outgoing_into(&mut self.outgoing_buf);
        for i in 0..self.outgoing_buf.len() {
            let outgoing = self.outgoing_buf[i];
            let req = if outgoing.is_writeback {
                let id = self.next_writeback_id;
                self.next_writeback_id += 1;
                MemRequest::write(id, outgoing.thread, outgoing.addr, dram_cycle)
            } else {
                MemRequest::read(
                    outgoing.token.expect("fills carry their MSHR token"),
                    outgoing.thread,
                    outgoing.addr,
                    dram_cycle,
                )
            };
            self.memory.enqueue_or_defer(req);
        }
    }

    /// Computes the next cycle at which [`System::step`] must run (strictly
    /// after `dram_cycle`), leaving the per-core progress analysis the skip
    /// replay needs in `progress_buf` (reused across calls; left empty when
    /// the next event is one cycle away and no skip can happen).
    ///
    /// Events, from any layer: a core able to retire or dispatch (forces the
    /// very next cycle), a core's window-head hit completing, a pending LLC
    /// fill arriving, the memory controller having an issuable command or
    /// refresh/preventive deadline, BreakHammer's next window edge, and a
    /// BreakHammer quota the LLC has not absorbed yet. Horizons may
    /// undershoot (waking early is only wasted work) but never overshoot.
    fn next_event(&mut self, dram_cycle: Cycle, clock: &CpuClock) -> Cycle {
        // Cheapest checks first: when the controller (O(1), memoized) or a
        // pending fill already pins the next event to the very next cycle, no
        // skip is possible and the per-core analysis is not needed (an empty
        // progress buffer is fine — the skip replay never runs for a
        // one-cycle advance).
        self.progress_buf.clear();
        let mut next = self.memory.next_event(dram_cycle);
        if next <= dram_cycle + 1 {
            return dram_cycle + 1;
        }
        if let Some(bh) = self.memory.breakhammer() {
            // BreakHammer quotas the LLC has not absorbed yet (e.g. restored
            // by the window rotation that `tick` just performed) are
            // propagated at the top of the next step — that step must not be
            // skipped, or a quota-stalled core would wake late. While the
            // quota version matches the last propagation the mirror is
            // known-current and the per-thread comparison is skipped.
            if self.synced_quota_version != Some(bh.quota_version()) {
                let mshrs = self.llc.config().mshrs;
                for t in 0..self.config.cores {
                    if self.llc.quota(ThreadId(t)) != bh.quota(ThreadId(t)).min(mshrs) {
                        return dram_cycle + 1;
                    }
                }
            }
        }
        if self.pending_fills_min != Cycle::MAX {
            next = next.min(self.pending_fills_min);
            if next <= dram_cycle + 1 {
                return dram_cycle + 1;
            }
        }

        let next_cpu = clock.next_cpu_cycle();
        if self.front.progress_batch(&self.llc, next_cpu, &mut self.progress_buf) {
            return dram_cycle + 1;
        }
        for p in &self.progress_buf {
            if let CoreProgress::Stalled(StallInfo { wake_at: Some(t), .. }) = p {
                next = next.min(dram_cycle + clock.dram_cycles_until(*t));
            }
        }
        if let Some(bh) = self.memory.breakhammer() {
            // The window rotation must happen at its exact cycle; the cycle
            // after it (when rotated quotas reach the LLC) is covered by the
            // pending-quota check above.
            next = next.min(bh.next_window_end());
        }
        next
    }

    /// The epoch-parallel kernel's planning pass, run right after the step at
    /// `dram_cycle`: decides between an independent-channel epoch and the
    /// serial skip, leaving the per-core progress analysis either replay
    /// needs in `progress_buf`.
    ///
    /// An epoch up to `h` is sound iff nothing outside the memory system can
    /// act before `h` and nothing inside it can influence anything outside
    /// before the step at `h`:
    ///
    /// * every core is stalled or finished, and no stalled core's timed
    ///   wake-up precedes `h` (an `Active` core, or a BreakHammer quota the
    ///   LLC has not mirrored yet — which could *raise* a quota and unstall
    ///   a core — forces the very next cycle instead, exactly like the
    ///   serial `next_event`);
    /// * no already-pending LLC fill is due before `h`, and
    ///   `h <= dram_cycle + 1 + read_latency` so no fill *issued inside* the
    ///   epoch can become due before it ends;
    /// * `h` does not exceed BreakHammer's next window edge, so the window
    ///   rotations skipped by the recording channels are provably no-ops and
    ///   the epoch merge may replay their events directly.
    ///
    /// In-epoch quota *decreases* (suspects marked during the merge replay)
    /// need no special handling: a lowered quota cannot change any stalled
    /// core's classification or reject reason (the LLC probes quota last,
    /// and MSHR occupancy and fills are frozen during the epoch), and the
    /// step at `h` propagates the new quotas before ticking the cores —
    /// state-identical to the serial schedule, which propagates them one
    /// step earlier but ticks only cores whose behaviour the propagation
    /// cannot alter.
    fn plan_next(
        &mut self,
        dram_cycle: Cycle,
        clock: &CpuClock,
        read_latency: u64,
        max: Cycle,
    ) -> Plan {
        self.progress_buf.clear();
        let mem_next = self.memory.next_event(dram_cycle);
        if let Some(bh) = self.memory.breakhammer() {
            if self.synced_quota_version != Some(bh.quota_version()) {
                let mshrs = self.llc.config().mshrs;
                for t in 0..self.config.cores {
                    if self.llc.quota(ThreadId(t)) != bh.quota(ThreadId(t)).min(mshrs) {
                        return Plan::Skip(dram_cycle + 1);
                    }
                }
            }
        }
        let next_cpu = clock.next_cpu_cycle();
        if self.front.progress_batch(&self.llc, next_cpu, &mut self.progress_buf) {
            return Plan::Skip(dram_cycle + 1);
        }
        // The serial horizon: the earliest cycle anything *outside* the
        // memory system must run at.
        let mut h_serial = Cycle::MAX;
        for p in &self.progress_buf {
            if let CoreProgress::Stalled(StallInfo { wake_at: Some(t), .. }) = p {
                h_serial = h_serial.min(dram_cycle + clock.dram_cycles_until(*t));
            }
        }
        if self.pending_fills_min != Cycle::MAX {
            h_serial = h_serial.min(self.pending_fills_min);
        }
        if let Some(bh) = self.memory.breakhammer() {
            h_serial = h_serial.min(bh.next_window_end());
        }
        let h_epoch = h_serial.min(dram_cycle + 1 + read_latency).min(max);
        if mem_next < h_epoch && h_epoch > dram_cycle + 1 {
            Plan::Epoch(h_epoch)
        } else {
            Plan::Skip(mem_next.min(h_serial))
        }
    }

    /// Fast-forwards across `dead_cycles` DRAM cycles in which, by
    /// construction of [`System::next_event`], every layer is quiescent:
    /// replays exactly the counter increments the per-cycle kernel would
    /// have accrued (stalled-core cycle/stall counters, rejected LLC access
    /// probes, failed enqueue retries) without touching any other state.
    fn skip_dead_cycles(&mut self, dead_cycles: u64, clock: &mut CpuClock) {
        self.skip_core_cycles(dead_cycles, clock);
        if self.memory.has_pending_enqueue() {
            self.memory.absorb_enqueue_rejections(dead_cycles);
        }
    }

    /// The core-side half of [`System::skip_dead_cycles`]: replays the
    /// stalled cores' cycle/stall counters and rejected LLC probes for
    /// `dead_cycles` DRAM cycles, using the classifications `progress_buf`
    /// captured at the decision point. Epoch replay uses this half alone —
    /// the channel workers account their own enqueue-rejection retries.
    fn skip_core_cycles(&mut self, dead_cycles: u64, clock: &mut CpuClock) {
        let cpu_ticks = clock.advance(dead_cycles);
        if cpu_ticks > 0 {
            for (core, p) in self.progress_buf.iter().enumerate() {
                if let CoreProgress::Stalled(stall) = p {
                    self.front.absorb_stall_ticks(core, cpu_ticks, stall);
                    if let Some(reason) = stall.reject {
                        self.llc.absorb_rejected_probes(cpu_ticks, reason);
                    }
                }
            }
        }
    }

    fn finish(mut self, dram_cycles: Cycle) -> SimulationResult {
        // Resolve the termination taxonomy before anything is settled: the
        // watchdog verdict (recorded at its boundary) wins; otherwise the run
        // either completed or hit the cycle cutoff.
        let termination = self.verdict.unwrap_or(if self.required_finished() {
            TerminationReason::Completed
        } else {
            TerminationReason::CycleCutoff
        });
        let livelock = self.livelock.take();
        // Settle any deferred hard-stall cycles before reading core stats.
        self.front.settle();
        let cores: Vec<CorePerformance> =
            (0..self.config.cores).map(|i| self.front.perf(i)).collect();

        let ever_suspect: Vec<bool> = (0..self.config.cores)
            .map(|t| {
                self.memory
                    .breakhammer()
                    .map(|bh| bh.is_suspect(ThreadId(t)) || bh.suspect_windows(ThreadId(t)) > 0)
                    .unwrap_or(false)
            })
            .collect();
        let latency = (0..self.config.cores).map(|t| self.memory.latency_of(ThreadId(t))).collect();
        // Classify every channel's raw flip set under the configured ECC
        // scheme; the classification feeds both the per-channel machine-check
        // counters and the aggregate attack outcome below.
        let classifications: Vec<_> = self
            .memory
            .controllers()
            .iter()
            .map(|ctrl| {
                let flips = ctrl.channel().rowhammer().map(|t| t.bitflips()).unwrap_or(&[]);
                classify_flips(flips, self.config.fault.ecc)
            })
            .collect();
        // The per-channel breakdown is the single source for energy and
        // bitflips: the aggregates below are sums over it, so the two views
        // can never drift apart.
        let per_channel: Vec<ChannelBreakdown> = self
            .memory
            .controllers()
            .iter()
            .zip(&classifications)
            .map(|(ctrl, ecc)| {
                let channel = ctrl.channel();
                ChannelBreakdown {
                    controller: ctrl.stats().clone(),
                    dram: channel.stats().clone(),
                    energy_nj: channel.energy().total_nj(
                        channel.energy_params(),
                        channel.timing(),
                        dram_cycles,
                        channel.geometry().ranks,
                    ),
                    bitflips: channel.rowhammer().map(|t| t.bitflip_count()).unwrap_or(0),
                    machine_checks: ecc.machine_checks,
                }
            })
            .collect();
        let energy_nj = per_channel.iter().map(|c| c.energy_nj).sum();
        let bitflips = per_channel.iter().map(|c| c.bitflips).sum();
        let controller = self.memory.aggregate_stats();
        let preventive_actions = controller.preventive_actions_total();

        let controllers = self.memory.controllers();
        let victims: Vec<VictimReport> = self
            .watched_victims
            .iter()
            .map(|(channel, row)| {
                let tracker = controllers[*channel].channel().rowhammer();
                VictimReport {
                    channel: *channel,
                    row: *row,
                    disturbance: tracker.map(|t| t.disturbance_of(*row)).unwrap_or(0),
                    bitflips: tracker
                        .map(|t| t.bitflips().iter().filter(|b| b.victim == *row).count())
                        .unwrap_or(0),
                }
            })
            .collect();

        // Aggregate the ECC classification into the attack outcome and judge
        // it against the watched victim rows. `watched_victims` is sorted, so
        // silent-row membership is a binary search.
        let mut outcome = AttackOutcome::default();
        for ecc in &classifications {
            outcome.flips_raw += ecc.flips_raw;
            outcome.corrected += ecc.corrected;
            outcome.detected += ecc.detected;
            outcome.silent += ecc.silent;
        }
        outcome.attack_success = match self.success_criterion {
            SuccessCriterion::AnySilentFlip => {
                classifications.iter().enumerate().any(|(ch, ecc)| {
                    ecc.silent_rows
                        .iter()
                        .any(|(row, _)| self.watched_victims.binary_search(&(ch, *row)).is_ok())
                })
            }
            SuccessCriterion::AnyFlip => victims.iter().any(|v| v.bitflips > 0),
        };

        SimulationResult {
            cores,
            dram_cycles,
            controller,
            dram: self.memory.aggregate_dram_stats(),
            cache: self.llc.stats().clone(),
            energy_nj,
            preventive_actions,
            bitflips,
            ever_suspect,
            breakhammer: self.memory.breakhammer().map(|bh| bh.stats().clone()),
            latency,
            per_channel,
            victims,
            outcome,
            stepping: *self.memory.stepping_stats(),
            termination,
            livelock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_mem::AddressMapping;
    use bh_mitigation::MechanismKind;
    use bh_workloads::{AttackerProfile, BenignProfile, TraceGenerator};

    fn generator(config: &SystemConfig) -> TraceGenerator {
        TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default())
    }

    fn benign_traces(config: &SystemConfig, entries: usize) -> Vec<Trace> {
        let gen = generator(config);
        // Streaming-dominated profiles: benign applications that rarely hammer
        // a row enough to trigger preventive actions at moderate N_RH, so the
        // attacker's contribution stands out (the paper's premise in §8.1).
        let profiles = ["libquantum", "fotonik3d", "xalancbmk", "povray"];
        profiles
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // `resolve` threads an actionable error naming the known
                // profiles; a typo here fails with that message instead of an
                // anonymous `unwrap` panic mid-simulation.
                let mut p = BenignProfile::resolve(name).unwrap_or_else(|e| panic!("{e}"));
                // Shrink footprints to the tiny test geometry.
                p.footprint_rows = p.footprint_rows.min(2_000);
                p.hot_rows = p.hot_rows.min(16).max(if p.hot_row_fraction > 0.0 { 1 } else { 0 });
                gen.benign(&p, entries, 100 + i as u64)
            })
            .collect()
    }

    fn attack_traces(config: &SystemConfig, entries: usize) -> Vec<Trace> {
        let mut traces = benign_traces(config, entries);
        traces[3] = AttackerProfile::paper_default().trace(
            &config.geometry,
            AddressMapping::paper_default(),
            entries,
            999,
        );
        traces
    }

    #[test]
    fn benign_system_without_mitigation_completes() {
        let mut config = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        config.instructions_per_core = 20_000;
        let traces = benign_traces(&config, 4_000);
        let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
        assert!(result.all_finished(&[0, 1, 2, 3]), "cores did not finish: {:?}", result.cores);
        for core in &result.cores {
            assert!(core.ipc > 0.05 && core.ipc <= 4.0, "ipc {}", core.ipc);
        }
        assert!(result.controller.reads_served > 0);
        assert!(result.dram.activates > 0);
        assert!(result.energy_nj > 0.0);
        assert_eq!(result.preventive_actions, 0);
        assert!(result.breakhammer.is_none());
    }

    #[test]
    fn attacker_with_graphene_triggers_actions_and_breakhammer_throttles_it() {
        let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
        base.instructions_per_core = 15_000;

        let traces = attack_traces(&base, 4_000);
        let without = System::new(base.clone(), &traces, vec![0, 1, 2]).run();
        assert!(without.preventive_actions > 0, "the attacker must trigger Graphene");
        assert_eq!(without.bitflips, 0, "Graphene must prevent bitflips");

        let mut with_bh = base;
        with_bh.breakhammer = true;
        // Lower TH_threat so the short test run identifies the attacker early;
        // the Table 2 default (32) needs longer runs to accumulate scores.
        let mut bh_cfg = with_bh.effective_breakhammer_config();
        bh_cfg.threat_threshold = 8.0;
        with_bh.breakhammer_config = Some(bh_cfg);
        let with = System::new(with_bh, &traces, vec![0, 1, 2]).run();
        assert_eq!(with.bitflips, 0, "BreakHammer must not compromise protection");
        assert!(with.ever_suspect[3], "the attacker must be identified as a suspect");
        assert!(!with.ever_suspect[0], "benign thread 0 must not be a suspect");
        assert!(
            with.preventive_actions < without.preventive_actions,
            "BreakHammer must reduce preventive actions ({} vs {})",
            with.preventive_actions,
            without.preventive_actions
        );
        let benign = [0usize, 1, 2];
        assert!(
            with.total_ipc(&benign) > without.total_ipc(&benign),
            "benign throughput must improve with BreakHammer ({:.3} vs {:.3})",
            with.total_ipc(&benign),
            without.total_ipc(&benign)
        );
        assert!(with.cache.quota_rejections > 0, "the attacker must have been quota-limited");
    }

    #[test]
    fn breakhammer_is_neutral_for_all_benign_workloads() {
        let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 256, false);
        base.instructions_per_core = 15_000;
        let traces = benign_traces(&base, 4_000);
        let without = System::new(base.clone(), &traces, vec![0, 1, 2, 3]).run();
        let mut with_cfg = base;
        with_cfg.breakhammer = true;
        let with = System::new(with_cfg, &traces, vec![0, 1, 2, 3]).run();
        let all = [0usize, 1, 2, 3];
        let ratio = with.total_ipc(&all) / without.total_ipc(&all);
        assert!(
            ratio > 0.9,
            "BreakHammer must not noticeably slow down all-benign workloads (ratio {ratio:.3})"
        );
    }

    #[test]
    fn watched_victims_report_disturbance_under_attack() {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
        config.instructions_per_core = 15_000;
        let attacker = AttackerProfile::paper_default().compose();
        let mut traces = benign_traces(&config, 4_000);
        traces[3] = attacker.trace(&config.geometry, AddressMapping::paper_default(), 4_000, 999);
        let victims = attacker.victim_rows(&config.geometry);
        assert!(!victims.is_empty());
        let result = System::new(config.clone(), &traces, vec![0, 1, 2])
            .watch_victims(victims.iter().map(|v| (v.channel, v.row)))
            .run();
        assert_eq!(result.victims.len(), victims.len());
        assert!(
            result.max_victim_disturbance() > 0,
            "hammered victims must accumulate disturbance"
        );
        // Every reported row is in-range for the tiny geometry.
        for v in &result.victims {
            assert!(v.row.row < config.geometry.rows_per_bank);
            assert_eq!(v.bitflips, 0, "Graphene must prevent bitflips");
        }

        // A system with no watch list reports no victims.
        let bare = System::new(config, &traces, vec![0, 1, 2]).run();
        assert!(bare.victims.is_empty());
    }

    #[test]
    fn rega_runs_with_inflated_timing_and_no_discrete_actions() {
        let mut config = SystemConfig::fast_test(MechanismKind::Rega, 64, true);
        config.instructions_per_core = 10_000;
        let traces = benign_traces(&config, 3_000);
        let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
        assert!(result.all_finished(&[0, 1, 2, 3]));
        assert_eq!(result.preventive_actions, 0, "REGA performs no controller-visible actions");
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_is_rejected() {
        let config = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        let traces = benign_traces(&config, 100);
        let _ = System::new(config, &traces[0..2], vec![0]);
    }
}
