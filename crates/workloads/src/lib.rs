//! # bh-workloads — synthetic workloads and attackers
//!
//! The paper evaluates BreakHammer with memory traces from SPEC CPU2006/2017,
//! TPC, MediaBench and YCSB plus a malicious memory-performance attacker.
//! Those traces are not redistributable, so this crate provides synthetic
//! generators that reproduce the properties the evaluation actually depends
//! on:
//!
//! * [`BenignProfile`] / [`TraceGenerator`] — benign applications grouped into
//!   the paper's High / Medium / Low memory-intensity classes, with organic
//!   hot rows matching Table 3;
//! * [`AttackerProfile`] — `clflush`-style hammering loops (double-sided,
//!   many-sided, multi-bank) that trigger many RowHammer-preventive actions;
//! * [`MixClass`] / [`MixBuilder`] — the four-core workload mixes of §7 and
//!   §8.1 (HHHH…LLLL and HHHA…LLLA);
//! * [`characterize()`] — the Table 3 characterisation (RBMPKI and rows with
//!   64+/128+/512+ activations per window).
//!
//! ## Example
//!
//! ```
//! use bh_workloads::{MixBuilder, MixClass, TraceGenerator};
//!
//! let builder = MixBuilder::new(TraceGenerator::paper_default());
//! let class = MixClass::attack_classes()[0]; // "HHHA"
//! let mix = builder.build(class, 0, 42);
//! assert_eq!(mix.cores(), 4);
//! assert_eq!(mix.attacker_thread, Some(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacker;
pub mod characterize;
pub mod generator;
pub mod mix;
pub mod profile;

pub use attacker::{AttackerKind, AttackerProfile, ChannelTarget};
pub use characterize::{characterize, WorkloadCharacteristics};
pub use generator::TraceGenerator;
pub use mix::{MixBuilder, MixClass, SlotClass, WorkloadMix};
pub use profile::{BenignProfile, IntensityClass, UnknownProfileError};
