//! Shared experiment machinery used by every figure/table binary.
//!
//! Each binary in `src/bin/` builds a [`Campaign`] (the workload mixes plus a
//! shared alone-IPC cache), runs the configurations its figure needs, and
//! prints the resulting series both as an aligned text table and as CSV.
//!
//! The experiment scale (instruction budget, number of mixes per class, the
//! `N_RH` sweep) defaults to a laptop-friendly "quick" configuration and can
//! be grown towards the paper's scale through environment variables:
//!
//! | Variable | Meaning | Quick default |
//! |---|---|---|
//! | `BH_INSTRUCTIONS` | instructions each benign core retires | 120 000 |
//! | `BH_MIXES_PER_CLASS` | workloads per mix class (paper: 15) | 1 |
//! | `BH_TRACE_ENTRIES` | trace records per benign application | 20 000 |
//! | `BH_ATTACKER_ENTRIES` | trace records for the attacker | 8 000 |
//! | `BH_NRH_LIST` | comma-separated `N_RH` sweep | `4096,1024,256,64` |
//! | `BH_SEED` | workload-generation seed | 42 |
//! | `BH_THREADS` | worker threads for parallel runs | all cores |
//! | `BH_WORKERS` | preferred alias for `BH_THREADS` (wins when both are set) | all cores |
//! | `BH_CHANNELS` | memory channels (sharded memory system) | 1 |
//! | `BH_SCENARIOS` | comma-separated attack scenarios (`all` = catalog) | none |

use bh_mitigation::MechanismKind;
use bh_sim::{Evaluator, MixEvaluation, SystemConfig};
use bh_stats::Table;
use bh_workloads::{
    scenario_by_name, scenario_catalog, MixBuilder, MixClass, TraceGenerator, WorkloadMix,
};
use std::collections::HashMap;

/// Experiment scale knobs (see the module documentation for the environment
/// variables that override them).
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Instructions each benign core must retire.
    pub instructions_per_core: u64,
    /// Number of workloads generated per mix class (the paper uses 15).
    pub mixes_per_class: usize,
    /// Trace records generated per benign application.
    pub benign_entries: usize,
    /// Trace records generated for the attacker.
    pub attacker_entries: usize,
    /// RowHammer thresholds swept by the scaling figures.
    pub nrh_values: Vec<u64>,
    /// Workload-generation seed.
    pub seed: u64,
    /// Worker threads used to evaluate mixes in parallel.
    pub worker_threads: usize,
    /// Memory channels in the simulated system (1 = the paper's Table 1
    /// system; more shard the memory system into per-channel controllers and
    /// mitigation instances with one shared BreakHammer).
    pub channels: usize,
    /// Attack-scenario names from the composable-attacker catalog swept in
    /// addition to the classic attack mixes (empty = classic attacker only;
    /// `BH_SCENARIOS=all` selects the whole catalog).
    pub scenarios: Vec<String>,
}

impl Scale {
    /// The laptop-friendly default scale.
    pub fn quick() -> Self {
        Scale {
            instructions_per_core: 60_000,
            mixes_per_class: 1,
            benign_entries: 20_000,
            attacker_entries: 8_000,
            nrh_values: vec![4096, 1024, 256, 64],
            seed: 42,
            worker_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            channels: 1,
            scenarios: Vec::new(),
        }
    }

    /// Reads the scale from the environment, falling back to
    /// [`Scale::quick`] for anything unspecified.
    pub fn from_env() -> Self {
        Scale::from_lookup(|name| std::env::var(name).ok())
    }

    /// Reads the scale from an arbitrary variable lookup (the injection point
    /// the tests use: mutating real process environment variables under a
    /// parallel test runner races against every other test reading them).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let mut scale = Scale::quick();
        let parse_u64 = |name: &str| lookup(name).and_then(|v| v.parse::<u64>().ok());
        if let Some(v) = parse_u64("BH_INSTRUCTIONS") {
            scale.instructions_per_core = v.max(1);
        }
        if let Some(v) = parse_u64("BH_MIXES_PER_CLASS") {
            scale.mixes_per_class = (v as usize).max(1);
        }
        if let Some(v) = parse_u64("BH_TRACE_ENTRIES") {
            scale.benign_entries = (v as usize).max(100);
        }
        if let Some(v) = parse_u64("BH_ATTACKER_ENTRIES") {
            scale.attacker_entries = (v as usize).max(100);
        }
        if let Some(v) = parse_u64("BH_SEED") {
            scale.seed = v;
        }
        if let Some(v) = parse_u64("BH_THREADS") {
            scale.worker_threads = (v as usize).max(1);
        }
        // `BH_WORKERS` is the preferred spelling (it matches the campaign
        // CLI's terminology); it wins over the legacy `BH_THREADS`.
        if let Some(v) = parse_u64("BH_WORKERS") {
            scale.worker_threads = (v as usize).max(1);
        }
        if let Some(v) = parse_u64("BH_CHANNELS") {
            scale.channels = (v as usize).max(1);
        }
        if let Some(list) = lookup("BH_NRH_LIST") {
            let parsed: Vec<u64> =
                list.split(',').filter_map(|s| s.trim().parse::<u64>().ok()).collect();
            if !parsed.is_empty() {
                scale.nrh_values = parsed;
            }
        }
        if let Some(list) = lookup("BH_SCENARIOS") {
            if list.trim() == "all" {
                scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
            } else {
                scale.scenarios = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
        }
        scale
    }

    /// The full seven-point `N_RH` sweep of the paper (4K → 64).
    pub fn paper_nrh_sweep() -> Vec<u64> {
        vec![4096, 2048, 1024, 512, 256, 128, 64]
    }
}

/// One evaluated (configuration, mix) pair, flattened for aggregation.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Mitigation mechanism.
    pub mechanism: MechanismKind,
    /// RowHammer threshold.
    pub nrh: u64,
    /// Whether BreakHammer was attached.
    pub breakhammer: bool,
    /// Mix class label (e.g. `"HHHA"`).
    pub mix_class: String,
    /// Mix instance name.
    pub mix_name: String,
    /// Weighted speedup over the benign applications.
    pub weighted_speedup: f64,
    /// Maximum slowdown of a benign application.
    pub max_slowdown: f64,
    /// DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed.
    pub preventive_actions: u64,
    /// Benign-application memory-latency percentiles in nanoseconds
    /// (p50, p90, p99).
    pub latency_ns: [f64; 3],
    /// True if the attacker thread was identified as a suspect.
    pub attacker_identified: bool,
    /// True if any benign thread was identified as a suspect.
    pub benign_misidentified: bool,
    /// Would-be RowHammer bitflips (must be 0 for deterministic mechanisms).
    pub bitflips: usize,
    /// Attack-scenario tag of the mix (`None` for the classic attacker and
    /// for benign mixes).
    pub scenario: Option<String>,
    /// Largest end-of-run disturbance of any watched victim row (0 when the
    /// mix declared no victims).
    pub max_victim_disturbance: u64,
}

impl RunRecord {
    fn from_eval(config: &SystemConfig, mix: &WorkloadMix, eval: &MixEvaluation) -> Self {
        let benign = mix.benign_threads();
        let hist = eval.result.merged_latency(&benign);
        let to_ns = |cycles: u64| config.timing.cycles_to_ns(cycles);
        let attacker_identified =
            mix.attacker_thread.map(|t| eval.result.ever_suspect[t]).unwrap_or(false);
        let benign_misidentified = benign.iter().any(|t| eval.result.ever_suspect[*t]);
        RunRecord {
            mechanism: config.mechanism,
            nrh: config.nrh,
            breakhammer: config.breakhammer,
            mix_class: mix.class.label(),
            mix_name: mix.name.clone(),
            weighted_speedup: eval.weighted_speedup,
            max_slowdown: eval.max_slowdown,
            energy_nj: eval.result.energy_nj,
            preventive_actions: eval.result.preventive_actions,
            latency_ns: [
                to_ns(hist.percentile(50.0)),
                to_ns(hist.percentile(90.0)),
                to_ns(hist.percentile(99.0)),
            ],
            attacker_identified,
            benign_misidentified,
            bitflips: eval.result.bitflips,
            scenario: mix.scenario.clone(),
            max_victim_disturbance: eval.result.max_victim_disturbance(),
        }
    }

    /// Short configuration label used in tables, e.g. `"Graphene+BH"`.
    pub fn config_label(&self) -> String {
        if self.breakhammer {
            format!("{}+BH", self.mechanism)
        } else {
            self.mechanism.to_string()
        }
    }
}

/// Builds the paper's Table 1 system configuration at the given experiment
/// scale.
pub fn paper_config(
    mechanism: MechanismKind,
    nrh: u64,
    breakhammer: bool,
    scale: &Scale,
) -> SystemConfig {
    let mut config =
        SystemConfig::paper_table1(mechanism, nrh, breakhammer).with_channels(scale.channels);
    config.instructions_per_core = scale.instructions_per_core;
    config.seed = scale.seed;
    // Bound the worst case (e.g. AQUA at N_RH=64 under attack, without
    // BreakHammer): runs that exceed ~400 DRAM cycles per target instruction
    // are cut off; IPCs measured up to the cut-off remain valid samples.
    config.max_dram_cycles = scale.instructions_per_core.saturating_mul(400).max(5_000_000);
    config
}

/// A campaign holds the generated workload mixes and the shared alone-IPC
/// cache, and evaluates configurations against them (in parallel).
#[derive(Debug)]
pub struct Campaign {
    scale: Scale,
    attack_mixes: Vec<WorkloadMix>,
    benign_mixes: Vec<WorkloadMix>,
    /// Mixes carrying the composable-attacker scenarios of
    /// [`Scale::scenarios`] (appended to `attack_mixes` in attack sweeps).
    scenario_mixes: Vec<WorkloadMix>,
    alone_cache: HashMap<String, f64>,
}

impl Campaign {
    /// Generates the attack, benign and scenario mix suites for `scale`.
    ///
    /// # Panics
    /// Panics (listing the catalog) if `scale.scenarios` names an unknown
    /// attack scenario.
    pub fn new(scale: Scale) -> Self {
        let generator = TraceGenerator::new(
            bh_dram::DramGeometry::paper_ddr5().with_channels(scale.channels),
            bh_mem::AddressMapping::paper_default(),
        );
        let mut builder = MixBuilder::new(generator);
        builder.benign_entries = scale.benign_entries;
        builder.attacker_entries = scale.attacker_entries;
        let attack_mixes =
            builder.build_suite(&MixClass::attack_classes(), scale.mixes_per_class, scale.seed);
        let benign_mixes =
            builder.build_suite(&MixClass::benign_classes(), scale.mixes_per_class, scale.seed);
        // Scenario sweeps hold the benign company fixed (the HHHA class) so
        // differences between scenarios isolate the attacker's shape.
        let scenario_class = MixClass::attack_classes()[0];
        let mut scenario_mixes = Vec::new();
        for name in &scale.scenarios {
            let scenario = scenario_by_name(name).unwrap_or_else(|e| panic!("{e}"));
            let scenario_builder = builder.clone().with_scenario(&scenario);
            for index in 0..scale.mixes_per_class {
                scenario_mixes.push(scenario_builder.build(scenario_class, index, scale.seed));
            }
        }
        Campaign { scale, attack_mixes, benign_mixes, scenario_mixes, alone_cache: HashMap::new() }
    }

    /// The experiment scale in use.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The attack mixes (HHHA … LLLA).
    pub fn attack_mixes(&self) -> &[WorkloadMix] {
        &self.attack_mixes
    }

    /// The benign mixes (HHHH … LLLL).
    pub fn benign_mixes(&self) -> &[WorkloadMix] {
        &self.benign_mixes
    }

    /// The composable-attacker scenario mixes (one suite per entry of
    /// [`Scale::scenarios`]).
    pub fn scenario_mixes(&self) -> &[WorkloadMix] {
        &self.scenario_mixes
    }

    /// The mixes an attack (or benign) sweep evaluates: attack sweeps cover
    /// the classic attack suite plus every requested scenario suite. Cloning
    /// a mix bumps trace reference counts, it does not copy records.
    pub fn sweep_mixes(&self, attack: bool) -> Vec<WorkloadMix> {
        self.mixes(attack)
    }

    fn mixes(&self, attack: bool) -> Vec<WorkloadMix> {
        if attack {
            self.attack_mixes.iter().chain(self.scenario_mixes.iter()).cloned().collect()
        } else {
            self.benign_mixes.to_vec()
        }
    }

    /// Warms (once) and returns the shared alone-IPC cache covering every
    /// application of every mix suite. Alone baselines are measured on the
    /// unprotected system, so one cache serves every configuration of a
    /// sweep.
    pub fn warmed_alone_cache(&mut self) -> &HashMap<String, f64> {
        self.warm_alone_cache();
        &self.alone_cache
    }

    /// Ensures the alone-IPC cache covers every application of every mix.
    fn warm_alone_cache(&mut self) {
        if !self.alone_cache.is_empty() {
            return;
        }
        let config = paper_config(MechanismKind::None, 4096, false, &self.scale);
        let mut evaluator = Evaluator::new(config);
        for mix in self
            .attack_mixes
            .iter()
            .chain(self.benign_mixes.iter())
            .chain(self.scenario_mixes.iter())
        {
            evaluator.warm_alone_cache(mix);
        }
        self.alone_cache = evaluator.alone_cache().clone();
    }

    /// Evaluates one configuration against the attack or benign mix suite,
    /// running mixes in parallel, and returns one record per mix.
    pub fn run(&mut self, config: &SystemConfig, attack: bool) -> Vec<RunRecord> {
        self.run_configs(std::slice::from_ref(config), attack)
    }

    /// Runs a full (mechanism × N_RH × ±BreakHammer) matrix over the chosen
    /// mix suite, parallelizing over the *flattened* (configuration × mix)
    /// grid so short sweeps (few mixes per class) still keep every worker
    /// busy instead of serializing on one configuration at a time.
    pub fn run_matrix(
        &mut self,
        mechanisms: &[MechanismKind],
        nrh_values: &[u64],
        breakhammer_options: &[bool],
        attack: bool,
    ) -> Vec<RunRecord> {
        let scale = self.scale.clone();
        let mut configs = Vec::new();
        for &mechanism in mechanisms {
            for &nrh in nrh_values {
                for &bh in breakhammer_options {
                    if mechanism == MechanismKind::None && bh {
                        continue; // BreakHammer needs a mechanism to observe.
                    }
                    configs.push(paper_config(mechanism, nrh, bh, &scale));
                }
            }
        }
        self.run_configs(&configs, attack)
    }

    /// Evaluates every (configuration, mix) pair of `configs` × the chosen
    /// suite with a shared worker pool, returning records grouped by
    /// configuration (in `configs` order) and, within each configuration, in
    /// mix order — the same order the former config-serial loop produced.
    fn run_configs(&mut self, configs: &[SystemConfig], attack: bool) -> Vec<RunRecord> {
        self.warm_alone_cache();
        let mixes = self.mixes(attack);
        let jobs: Vec<(usize, usize)> =
            (0..configs.len()).flat_map(|c| (0..mixes.len()).map(move |m| (c, m))).collect();
        evaluate_jobs(
            configs,
            &mixes,
            &jobs,
            &self.alone_cache,
            self.scale.worker_threads,
            &|_, _| {},
        )
    }
}

/// Evaluates a set of `(config index, mix index)` jobs with a pool of
/// `workers` threads pulling from a shared work-stealing counter, and returns
/// one [`RunRecord`] per job, in `jobs` order.
///
/// Each worker keeps its completed records in a thread-local vector (tagged
/// with the job index) that is stitched into the result after the scope
/// joins — there is no shared result lock on the hot path. Workers also reuse
/// one [`Evaluator`] across consecutive jobs, switching its configuration
/// only when the claimed job's config index changes (the alone-IPC cache is
/// configuration-independent, see [`Evaluator::set_config`]); since jobs are
/// flattened configuration-major, a worker claiming consecutive indices
/// rarely pays the switch.
///
/// `on_record(job_index, record)` fires on the worker thread as soon as a
/// cell completes — the campaign engine uses it to stream results to its
/// checkpoint store; plain sweeps pass a no-op.
pub fn evaluate_jobs(
    configs: &[SystemConfig],
    mixes: &[WorkloadMix],
    jobs: &[(usize, usize)],
    alone_cache: &HashMap<String, f64>,
    workers: usize,
    on_record: &(dyn Fn(usize, &RunRecord) + Sync),
) -> Vec<RunRecord> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);

    let worker_outputs: Vec<Vec<(usize, RunRecord)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, RunRecord)> = Vec::new();
                    let mut evaluator: Option<Evaluator> = None;
                    let mut current_config = usize::MAX;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let (c, m) = jobs[i];
                        if current_config != c {
                            match &mut evaluator {
                                Some(ev) => ev.set_config(configs[c].clone()),
                                None => {
                                    evaluator = Some(
                                        Evaluator::new(configs[c].clone())
                                            .with_alone_cache(alone_cache.clone()),
                                    )
                                }
                            }
                            current_config = c;
                        }
                        let ev = evaluator.as_mut().expect("evaluator initialised above");
                        let eval = ev.evaluate(&mixes[m]);
                        let record = RunRecord::from_eval(&configs[c], &mixes[m], &eval);
                        on_record(i, &record);
                        local.push((i, record));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("evaluation worker panicked")).collect()
    });

    let mut slots: Vec<Option<RunRecord>> = vec![None; jobs.len()];
    for (i, record) in worker_outputs.into_iter().flatten() {
        slots[i] = Some(record);
    }
    slots.into_iter().map(|slot| slot.expect("every job was evaluated")).collect()
}

// --- aggregation helpers ----------------------------------------------------

/// Selects the records matching a configuration.
pub fn select(
    records: &[RunRecord],
    mechanism: MechanismKind,
    nrh: u64,
    breakhammer: bool,
) -> Vec<&RunRecord> {
    records
        .iter()
        .filter(|r| r.mechanism == mechanism && r.nrh == nrh && r.breakhammer == breakhammer)
        .collect()
}

/// Restricts a record selection to one mix class; the pseudo-class
/// `"geomean"` keeps every record (used for the aggregate columns of
/// Figs. 6, 7, 13 and 14).
pub fn filter_class<'a>(set: &[&'a RunRecord], class: &str) -> Vec<&'a RunRecord> {
    if class == "geomean" {
        set.to_vec()
    } else {
        set.iter().copied().filter(|r| r.mix_class == class).collect()
    }
}

/// Geometric mean of the weighted speedups of a record selection.
///
/// # Panics
/// Panics if the selection is empty.
pub fn geomean_speedup(records: &[&RunRecord]) -> f64 {
    let values: Vec<f64> = records.iter().map(|r| r.weighted_speedup).collect();
    bh_stats::geometric_mean(&values)
}

/// Arithmetic mean of a projection over a record selection.
///
/// # Panics
/// Panics if the selection is empty.
pub fn mean_of(records: &[&RunRecord], f: impl Fn(&RunRecord) -> f64) -> f64 {
    assert!(!records.is_empty(), "cannot aggregate an empty selection");
    records.iter().map(|r| f(r)).sum::<f64>() / records.len() as f64
}

/// Prints a table as text and CSV, under a heading, and returns the CSV (for
/// tests).
pub fn print_results(title: &str, table: &Table) -> String {
    println!("=== {title} ===");
    println!("{}", table.to_text());
    println!("--- CSV ---");
    let csv = table.to_csv();
    println!("{csv}");
    csv
}

/// The RowHammer threshold used by the fixed-threshold figures (6, 7 and 14):
/// the paper evaluates them at N_RH = 1K; override with `BH_FIG_NRH` when
/// running at a reduced scale, where the per-row thresholds of N_RH = 1K are
/// not reachable within the shortened simulations.
pub fn figure_nrh(default: u64) -> u64 {
    std::env::var("BH_FIG_NRH").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Prints the Table 1 / Table 2 configuration summary when `--print-config`
/// is among the command-line arguments.
pub fn maybe_print_config(scale: &Scale) {
    if std::env::args().any(|a| a == "--print-config") {
        let config = paper_config(MechanismKind::Graphene, 1024, true, scale);
        println!("System configuration (Table 1): {}", config.summary());
        println!("{:#?}", config.memctrl);
        println!("{:#?}", config.cache);
        println!(
            "BreakHammer configuration (Table 2): {:#?}",
            config.effective_breakhammer_config()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_lookup_overrides_are_applied() {
        // `from_lookup` is the injection point: mutating real environment
        // variables under the parallel test runner would race against every
        // other test that reads the scale.
        let vars: std::collections::HashMap<&str, &str> = [
            ("BH_INSTRUCTIONS", "5000"),
            ("BH_NRH_LIST", "128, 64"),
            ("BH_MIXES_PER_CLASS", "2"),
            ("BH_ATTACKER_ENTRIES", "1234"),
        ]
        .into_iter()
        .collect();
        let scale = Scale::from_lookup(|name| vars.get(name).map(|v| v.to_string()));
        assert_eq!(scale.instructions_per_core, 5000);
        assert_eq!(scale.nrh_values, vec![128, 64]);
        assert_eq!(scale.mixes_per_class, 2);
        assert_eq!(scale.attacker_entries, 1234);
        // Unset variables keep their quick defaults.
        assert_eq!(scale.benign_entries, Scale::quick().benign_entries);
        assert!(scale.scenarios.is_empty(), "scenarios default to none");
    }

    #[test]
    fn bh_workers_wins_over_legacy_bh_threads() {
        let both = Scale::from_lookup(|name| match name {
            "BH_THREADS" => Some("3".to_string()),
            "BH_WORKERS" => Some("7".to_string()),
            _ => None,
        });
        assert_eq!(both.worker_threads, 7);
        let legacy = Scale::from_lookup(|name| (name == "BH_THREADS").then(|| "3".to_string()));
        assert_eq!(legacy.worker_threads, 3);
        let preferred = Scale::from_lookup(|name| (name == "BH_WORKERS").then(|| "5".to_string()));
        assert_eq!(preferred.worker_threads, 5);
    }

    #[test]
    fn scenario_lookup_accepts_names_and_the_all_keyword() {
        let named = Scale::from_lookup(|name| {
            (name == "BH_SCENARIOS").then(|| "fuzz-nbr, press-nbr".to_string())
        });
        assert_eq!(named.scenarios, vec!["fuzz-nbr", "press-nbr"]);
        let all = Scale::from_lookup(|name| (name == "BH_SCENARIOS").then(|| "all".to_string()));
        assert_eq!(
            all.scenarios,
            scenario_catalog().iter().map(|s| s.name.to_string()).collect::<Vec<_>>()
        );
        assert!(all.scenarios.len() >= 4);
    }

    #[test]
    fn unparseable_lookup_values_fall_back_to_defaults() {
        let scale = Scale::from_lookup(|name| {
            (name == "BH_INSTRUCTIONS").then(|| "not-a-number".to_string())
        });
        assert_eq!(scale, Scale::quick());
    }

    #[test]
    fn paper_nrh_sweep_matches_the_figures() {
        assert_eq!(Scale::paper_nrh_sweep(), vec![4096, 2048, 1024, 512, 256, 128, 64]);
    }

    #[test]
    fn campaign_builds_the_requested_mix_suites() {
        let mut scale = Scale::quick();
        scale.mixes_per_class = 2;
        scale.benign_entries = 500;
        scale.attacker_entries = 500;
        let campaign = Campaign::new(scale);
        assert_eq!(campaign.attack_mixes().len(), 12);
        assert_eq!(campaign.benign_mixes().len(), 12);
        assert!(campaign.attack_mixes().iter().all(|m| m.attacker_thread.is_some()));
        assert!(campaign.benign_mixes().iter().all(|m| m.attacker_thread.is_none()));
        assert!(campaign.scenario_mixes().is_empty(), "no scenarios requested");
    }

    #[test]
    fn scenario_suites_join_the_attack_sweep() {
        let mut scale = Scale::quick();
        scale.benign_entries = 500;
        scale.attacker_entries = 500;
        scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
        let campaign = Campaign::new(scale);
        assert_eq!(campaign.scenario_mixes().len(), scenario_catalog().len());
        for (mix, scenario) in campaign.scenario_mixes().iter().zip(scenario_catalog()) {
            assert_eq!(mix.scenario.as_deref(), Some(scenario.name));
            assert!(mix.name.contains(scenario.name), "{}", mix.name);
            assert!(mix.attacker_thread.is_some());
            assert!(!mix.victim_rows.is_empty(), "{}", mix.name);
        }
        let sweep = campaign.mixes(true);
        assert_eq!(sweep.len(), campaign.attack_mixes().len() + campaign.scenario_mixes().len());
        assert_eq!(campaign.mixes(false).len(), campaign.benign_mixes().len());
    }

    #[test]
    #[should_panic(expected = "unknown attack scenario")]
    fn unknown_scenario_names_are_rejected_with_the_catalog() {
        let mut scale = Scale::quick();
        scale.scenarios = vec!["not-a-scenario".to_string()];
        let _ = Campaign::new(scale);
    }

    #[test]
    fn run_matrix_sweeps_scenarios_with_breakhammer_on_and_off() {
        // Tiny scale: this exercises the full scenario path (composed
        // attacker → mix → simulator → per-victim stats) end to end.
        let mut scale = Scale::quick();
        scale.instructions_per_core = 4_000;
        scale.benign_entries = 600;
        scale.attacker_entries = 600;
        scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
        let mut campaign = Campaign::new(scale);
        let records = campaign.run_matrix(&[MechanismKind::Graphene], &[64], &[false, true], true);
        for bh in [false, true] {
            let scenarios: std::collections::HashSet<&str> = records
                .iter()
                .filter(|r| r.breakhammer == bh)
                .filter_map(|r| r.scenario.as_deref())
                .collect();
            assert!(
                scenarios.len() >= 4,
                "need >= 4 scenarios with breakhammer={bh}, got {scenarios:?}"
            );
        }
        // Scenario records carry per-victim stats; classic records have no
        // scenario tag but still watch the compat attacker's victims.
        assert!(records
            .iter()
            .filter(|r| r.scenario.is_some())
            .any(|r| r.max_victim_disturbance > 0));
    }

    #[test]
    fn record_selection_and_aggregation() {
        let make = |mech, nrh, bh, ws| RunRecord {
            mechanism: mech,
            nrh,
            breakhammer: bh,
            mix_class: "HHHA".to_string(),
            mix_name: "HHHA-00".to_string(),
            weighted_speedup: ws,
            max_slowdown: 2.0,
            energy_nj: 10.0,
            preventive_actions: 5,
            latency_ns: [10.0, 20.0, 30.0],
            attacker_identified: true,
            benign_misidentified: false,
            bitflips: 0,
            scenario: None,
            max_victim_disturbance: 0,
        };
        let records = vec![
            make(MechanismKind::Para, 1024, true, 2.0),
            make(MechanismKind::Para, 1024, true, 8.0),
            make(MechanismKind::Para, 1024, false, 1.0),
            make(MechanismKind::Graphene, 1024, true, 3.0),
        ];
        let sel = select(&records, MechanismKind::Para, 1024, true);
        assert_eq!(sel.len(), 2);
        assert!((geomean_speedup(&sel) - 4.0).abs() < 1e-12);
        assert!((mean_of(&sel, |r| r.max_slowdown) - 2.0).abs() < 1e-12);
        assert_eq!(sel[0].config_label(), "PARA+BH");
        assert_eq!(select(&records, MechanismKind::Para, 1024, false)[0].config_label(), "PARA");
    }
}
