//! Event-based DRAM energy model.
//!
//! The paper evaluates DRAM energy (Fig. 12) with a DRAMPower-style model on
//! top of Ramulator. Our substitute counts the energy-relevant events the
//! device performs (activate/precharge pairs, column reads and writes,
//! all-bank refreshes, RFM windows, directed victim refreshes and AQUA row
//! migrations) and adds rank background power integrated over simulated time.
//! Absolute joules differ from the authors' testbed, but the normalised
//! energy — dominated by how many preventive actions and data transfers were
//! performed — is preserved.

use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};

/// Per-event energies (nanojoules) and background power (milliwatts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy of one ACT + PRE pair (row cycle) in nJ.
    pub act_pre_nj: f64,
    /// Energy of one column read burst in nJ (including I/O).
    pub read_nj: f64,
    /// Energy of one column write burst in nJ (including I/O).
    pub write_nj: f64,
    /// Energy of one all-bank refresh command in nJ.
    pub refresh_nj: f64,
    /// Energy of one same-bank refresh command in nJ.
    pub refresh_sb_nj: f64,
    /// Energy of one refresh-management (RFM) window in nJ.
    pub rfm_nj: f64,
    /// Energy of one directed victim-row refresh in nJ.
    pub victim_refresh_nj: f64,
    /// Background (standby + peripheral) power per rank in mW.
    pub background_mw_per_rank: f64,
}

impl EnergyParams {
    /// DDR5-class per-event energies. Values are representative of a 16 Gb
    /// x8 DDR5 device; only ratios matter for the reproduced figures.
    pub fn ddr5() -> Self {
        EnergyParams {
            act_pre_nj: 2.1,
            read_nj: 1.4,
            write_nj: 1.5,
            refresh_nj: 140.0,
            refresh_sb_nj: 30.0,
            rfm_nj: 70.0,
            victim_refresh_nj: 2.1,
            background_mw_per_rank: 120.0,
        }
    }

    /// DDR4-class per-event energies.
    pub fn ddr4() -> Self {
        EnergyParams {
            act_pre_nj: 2.8,
            read_nj: 1.8,
            write_nj: 1.9,
            refresh_nj: 190.0,
            refresh_sb_nj: 45.0,
            rfm_nj: 95.0,
            victim_refresh_nj: 2.8,
            background_mw_per_rank: 150.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::ddr5()
    }
}

/// Running counters of the energy-relevant events one channel has performed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounters {
    /// Row activations (each eventually paired with a precharge).
    pub activations: u64,
    /// Explicit precharges (informational; energy is charged per ACT).
    pub precharges: u64,
    /// Column reads.
    pub reads: u64,
    /// Column writes.
    pub writes: u64,
    /// All-bank refresh commands.
    pub refreshes: u64,
    /// Same-bank refresh commands.
    pub refreshes_same_bank: u64,
    /// Refresh-management commands.
    pub rfm_commands: u64,
    /// Directed victim-row refreshes (preventive refreshes).
    pub victim_refreshes: u64,
}

impl EnergyCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        EnergyCounters::default()
    }

    /// Total DRAM energy in nanojoules after `elapsed_cycles` of simulated
    /// time on a system with `ranks` ranks.
    pub fn total_nj(
        &self,
        params: &EnergyParams,
        timing: &TimingParams,
        elapsed_cycles: u64,
        ranks: usize,
    ) -> f64 {
        let dynamic = self.dynamic_nj(params);
        let seconds = timing.cycles_to_ns(elapsed_cycles) * 1e-9;
        let background = params.background_mw_per_rank * 1e-3 * ranks as f64 * seconds * 1e9;
        dynamic + background
    }

    /// Dynamic (event) energy only, in nanojoules.
    pub fn dynamic_nj(&self, params: &EnergyParams) -> f64 {
        self.activations as f64 * params.act_pre_nj
            + self.reads as f64 * params.read_nj
            + self.writes as f64 * params.write_nj
            + self.refreshes as f64 * params.refresh_nj
            + self.refreshes_same_bank as f64 * params.refresh_sb_nj
            + self.rfm_commands as f64 * params.rfm_nj
            + self.victim_refreshes as f64 * params.victim_refresh_nj
    }

    /// Energy attributable to RowHammer-preventive work only (victim
    /// refreshes and RFM windows), in nanojoules.
    pub fn preventive_nj(&self, params: &EnergyParams) -> f64 {
        self.victim_refreshes as f64 * params.victim_refresh_nj
            + self.rfm_commands as f64 * params.rfm_nj
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.refreshes_same_bank += other.refreshes_same_bank;
        self.rfm_commands += other.rfm_commands;
        self.victim_refreshes += other.victim_refreshes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counters_have_only_background_energy() {
        let c = EnergyCounters::new();
        let p = EnergyParams::ddr5();
        let t = TimingParams::ddr5_4800();
        assert_eq!(c.dynamic_nj(&p), 0.0);
        let total = c.total_nj(&p, &t, t.ns_to_cycles(1000.0), 2);
        // 2 ranks * 120mW * 1us = 240 nJ
        assert!((total - 240.0).abs() < 1.0, "got {total}");
    }

    #[test]
    fn dynamic_energy_scales_with_events() {
        let p = EnergyParams::ddr5();
        let mut c = EnergyCounters::new();
        c.activations = 10;
        c.reads = 5;
        c.writes = 3;
        c.refreshes = 1;
        c.rfm_commands = 2;
        c.victim_refreshes = 4;
        let expected = 10.0 * p.act_pre_nj
            + 5.0 * p.read_nj
            + 3.0 * p.write_nj
            + 1.0 * p.refresh_nj
            + 2.0 * p.rfm_nj
            + 4.0 * p.victim_refresh_nj;
        assert!((c.dynamic_nj(&p) - expected).abs() < 1e-9);
        assert!((c.preventive_nj(&p) - (2.0 * p.rfm_nj + 4.0 * p.victim_refresh_nj)).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = EnergyCounters { activations: 1, reads: 2, ..Default::default() };
        let b = EnergyCounters { activations: 3, writes: 4, rfm_commands: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.activations, 4);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 4);
        assert_eq!(a.rfm_commands, 5);
    }

    #[test]
    fn preventive_actions_dominate_when_abundant() {
        // Sanity check for the shape of Fig. 12: a workload with many victim
        // refreshes consumes visibly more dynamic energy than one without.
        let p = EnergyParams::ddr5();
        let mut quiet = EnergyCounters::new();
        quiet.activations = 1000;
        quiet.reads = 1000;
        let mut hammered = quiet.clone();
        hammered.victim_refreshes = 4000;
        assert!(hammered.dynamic_nj(&p) > 2.0 * quiet.dynamic_nj(&p));
    }
}
