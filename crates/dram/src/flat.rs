//! [`FlatMap`]: a flat, open-addressing hash table for the simulator's hot
//! paths.
//!
//! The per-activation trackers (mitigation counter tables, the RowHammer
//! disturbance model's aggressor store) were originally `HashMap`-backed.
//! `std::collections::HashMap` pays for DoS resistance (SipHash) and pointer
//! chasing that a simulator keyed by small dense-ish integers does not need;
//! `FlatMap` replaces it with Fibonacci hashing over a power-of-two slot
//! array, linear probing, and backward-shift deletion (no tombstones), so a
//! lookup is a multiply, a shift and a short linear scan over contiguous
//! memory.
//!
//! Growth only happens when an insert pushes the load factor above 3/4 —
//! i.e. during warm-up. A table sized for its steady-state population never
//! reallocates, which is what the allocation-free activation hot path relies
//! on (see the repository README's "Allocation-free hot path" section).

/// Sentinel key marking an empty slot. Keys must be strictly below this.
const EMPTY: u64 = u64::MAX;

/// Multiplier for Fibonacci hashing (2^64 / φ, odd).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A flat open-addressing map from `u64` keys to `Copy` values.
///
/// Keys must be `< u64::MAX` (the sentinel). Iteration order is the probe
/// order of the slot array and therefore deterministic for a given sequence
/// of operations, but otherwise unspecified — callers that need a canonical
/// order must sort (as [`RowHammerTracker::service_rfm`] does).
///
/// [`RowHammerTracker::service_rfm`]: crate::RowHammerTracker::service_rfm
#[derive(Debug, Clone)]
pub struct FlatMap<V> {
    keys: Box<[u64]>,
    values: Box<[V]>,
    /// `slots - 1` (slots is a power of two).
    mask: usize,
    /// `64 - log2(slots)`, the Fibonacci hash shift.
    shift: u32,
    len: usize,
}

impl<V: Copy + Default> FlatMap<V> {
    /// Creates a map that holds at least `capacity` entries before growing.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        FlatMap {
            keys: vec![EMPTY; slots].into_boxed_slice(),
            values: vec![V::default(); slots].into_boxed_slice(),
            mask: slots - 1,
            shift: 64 - slots.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Returns `Ok(slot)` if `key` is present, `Err(slot)` with its insertion
    /// point otherwise.
    #[inline]
    fn probe(&self, key: u64) -> Result<usize, usize> {
        debug_assert!(key != EMPTY, "u64::MAX is the reserved empty-slot key");
        let mut i = self.home(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Ok(i);
            }
            if k == EMPTY {
                return Err(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The value stored for `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        self.probe(key).ok().map(|i| self.values[i])
    }

    /// Mutable access to the value stored for `key`, if any.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.probe(key) {
            Ok(i) => Some(&mut self.values[i]),
            Err(_) => None,
        }
    }

    /// True if `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.probe(key).is_ok()
    }

    /// Returns a mutable reference to `key`'s value, inserting `default`
    /// first if the key is absent (the `HashMap::entry(..).or_insert(..)`
    /// idiom).
    #[inline]
    pub fn or_insert(&mut self, key: u64, default: V) -> &mut V {
        match self.probe(key) {
            Ok(i) => &mut self.values[i],
            Err(mut i) => {
                if self.should_grow() {
                    self.grow();
                    i = self.probe(key).unwrap_err();
                }
                self.keys[i] = key;
                self.values[i] = default;
                self.len += 1;
                &mut self.values[i]
            }
        }
    }

    /// Inserts or overwrites the value for `key`.
    pub fn insert(&mut self, key: u64, value: V) {
        *self.or_insert(key, value) = value;
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion, so the table never accumulates tombstones.
    ///
    /// `bh_mitigation`'s Misra–Gries table carries extra per-slot state the
    /// generic map cannot hold and therefore duplicates this probe/deletion
    /// scheme (`MisraGries::remove_slot`); keep the cyclic-interval rule
    /// below in sync with it.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let Ok(mut hole) = self.probe(key) else {
            return None;
        };
        let removed = self.values[hole];
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let k = self.keys[i];
            if k == EMPTY {
                break;
            }
            // An entry may fill the hole iff its home position lies outside
            // the (hole, i] cyclic interval — i.e. moving it backward cannot
            // move it before its home slot.
            let home = self.home(k);
            if (i.wrapping_sub(home) & self.mask) >= (i.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = k;
                self.values[hole] = self.values[i];
                hole = i;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(removed)
    }

    /// Removes every entry, keeping the allocated slot array.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Iterates over `(key, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
    }

    /// Calls `f` on every `(key, &mut value)` pair in slot order.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(u64, &mut V)) {
        for i in 0..self.keys.len() {
            if self.keys[i] != EMPTY {
                f(self.keys[i], &mut self.values[i]);
            }
        }
    }

    #[inline]
    fn should_grow(&self) -> bool {
        // Grow at 3/4 load so probe sequences stay short.
        (self.len + 1) * 4 > (self.mask + 1) * 3
    }

    #[cold]
    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_values = std::mem::take(&mut self.values);
        let slots = (self.mask + 1) * 2;
        self.keys = vec![EMPTY; slots].into_boxed_slice();
        self.values = vec![V::default(); slots].into_boxed_slice();
        self.mask = slots - 1;
        self.shift = 64 - slots.trailing_zeros();
        self.len = 0;
        for (k, v) in old_keys.iter().zip(old_values.iter()) {
            if *k != EMPTY {
                let i = self.probe(*k).unwrap_err();
                self.keys[i] = *k;
                self.values[i] = *v;
                self.len += 1;
            }
        }
    }
}

impl<V: Copy + Default> Default for FlatMap<V> {
    fn default() -> Self {
        FlatMap::with_capacity(4)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FlatMap<u64> = FlatMap::with_capacity(4);
        assert!(m.is_empty());
        m.insert(10, 1);
        m.insert(20, 2);
        assert_eq!(m.get(10), Some(1));
        assert_eq!(m.get(20), Some(2));
        assert_eq!(m.get(30), None);
        assert_eq!(m.remove(10), Some(1));
        assert_eq!(m.remove(10), None);
        assert_eq!(m.len(), 1);
        *m.or_insert(20, 0) += 5;
        assert_eq!(m.get(20), Some(7));
        assert_eq!(*m.or_insert(30, 9), 9);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FlatMap<u64> = FlatMap::with_capacity(2);
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k), Some(k * 3), "key {k}");
        }
    }

    #[test]
    fn backward_shift_preserves_probe_chains() {
        // Force a dense cluster, then delete from its middle and verify the
        // remaining keys are all still reachable.
        let mut m: FlatMap<u32> = FlatMap::with_capacity(64);
        let keys: Vec<u64> = (0..96).map(|i| i * 7 + 1).collect();
        for &k in &keys {
            m.insert(k, k as u32);
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(m.remove(k), Some(k as u32));
        }
        for (i, &k) in keys.iter().enumerate() {
            let expect = if i % 3 == 0 { None } else { Some(k as u32) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut m: FlatMap<u8> = FlatMap::with_capacity(8);
        for k in 0..8u64 {
            m.insert(k, 1);
        }
        let slots_before = m.mask;
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.mask, slots_before);
        assert_eq!(m.get(3), None);
        m.insert(3, 9);
        assert_eq!(m.get(3), Some(9));
    }

    #[test]
    fn mirrors_hashmap_under_random_operations() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut flat: FlatMap<u64> = FlatMap::with_capacity(4);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let key = rng() % 256;
            match rng() % 4 {
                0 => {
                    let v = rng();
                    flat.insert(key, v);
                    reference.insert(key, v);
                }
                1 => {
                    assert_eq!(flat.remove(key), reference.remove(&key));
                }
                2 => {
                    *flat.or_insert(key, 0) += 1;
                    *reference.entry(key).or_insert(0) += 1;
                }
                _ => {
                    assert_eq!(flat.get(key), reference.get(&key).copied());
                }
            }
            assert_eq!(flat.len(), reference.len());
        }
        let mut flat_pairs: Vec<(u64, u64)> = flat.iter().collect();
        flat_pairs.sort_unstable();
        let mut ref_pairs: Vec<(u64, u64)> = reference.into_iter().collect();
        ref_pairs.sort_unstable();
        assert_eq!(flat_pairs, ref_pairs);
    }

    #[test]
    fn for_each_mut_visits_every_entry() {
        let mut m: FlatMap<u64> = FlatMap::with_capacity(16);
        for k in 0..16u64 {
            m.insert(k, 0);
        }
        m.for_each_mut(|k, v| *v = k + 1);
        for k in 0..16u64 {
            assert_eq!(m.get(k), Some(k + 1));
        }
    }
}
