//! Results produced by a full-system simulation run.

use bh_core::BreakHammerStats;
use bh_cpu::CacheStats;
use bh_dram::{Cycle, DramStats, RowAddr, ThreadId};
use bh_mem::{ControllerStats, LatencyHistogram, SteppingStats};
use serde::{Deserialize, Serialize};

/// Performance of one core over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePerformance {
    /// The hardware thread.
    pub thread: ThreadId,
    /// Instructions retired.
    pub instructions: u64,
    /// Core cycles elapsed while the core was running.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whether the core reached its instruction budget.
    pub finished: bool,
}

/// Per-memory-channel slice of a simulation's statistics (one entry per
/// channel, in channel order). On the paper's single-channel system this is
/// one entry equal to the aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelBreakdown {
    /// This channel's memory-controller statistics.
    pub controller: ControllerStats,
    /// This channel's DRAM command statistics.
    pub dram: DramStats,
    /// This channel's DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// Would-be bitflips recorded by this channel's victim model.
    pub bitflips: usize,
    /// Machine-check events raised on this channel by the ECC model (one per
    /// detected-but-uncorrectable row under SEC-DED; always 0 without ECC).
    #[serde(default)]
    pub machine_checks: u64,
}

/// The security outcome of a run under the configured fault model and ECC
/// scheme ([`bh_dram::FaultConfig`]): the raw flip count broken down by what
/// ECC did with each flip, plus the verdict against the workload's victim
/// layout. All zeros (with `attack_success: false`) when no flip occurred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Raw bit-flips before ECC, summed over all channels.
    pub flips_raw: u64,
    /// Flips corrected by ECC (single-flip rows under SEC-DED).
    pub corrected: u64,
    /// Flips detected but not corrected (double-flip rows under SEC-DED;
    /// each such row also raises a machine check, see
    /// [`ChannelBreakdown::machine_checks`]).
    pub detected: u64,
    /// Flips that escaped ECC silently (3+ flips per row under SEC-DED;
    /// every flip when no ECC is configured).
    pub silent: u64,
    /// Whether the run satisfies the workload's
    /// [`bh_dram::SuccessCriterion`] — by default, at least one *silent*
    /// flip landed in a watched victim row.
    pub attack_success: bool,
}

/// Disturbance accumulated by one watched victim row over the run (declared
/// by the workload's `VictimLayout` and registered via
/// [`System::watch_victims`](crate::System::watch_victims)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimReport {
    /// The channel whose tracker watched the row.
    pub channel: usize,
    /// The watched victim row.
    pub row: RowAddr,
    /// Activations its aggressor neighbors accumulated against it (the
    /// victim-model disturbance counter at end of run).
    pub disturbance: u64,
    /// Would-be bitflips recorded on this row.
    pub bitflips: usize,
}

/// Everything measured during one simulation run.
///
/// Implements `PartialEq` so the differential test suite can assert that the
/// per-cycle and event-driven kernels produce bit-identical results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Per-core performance.
    pub cores: Vec<CorePerformance>,
    /// Total DRAM command-clock cycles simulated.
    pub dram_cycles: Cycle,
    /// Memory-controller statistics.
    pub controller: ControllerStats,
    /// DRAM command statistics.
    pub dram: DramStats,
    /// LLC statistics.
    pub cache: CacheStats,
    /// Total DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed (Fig. 10's quantity).
    pub preventive_actions: u64,
    /// Would-be RowHammer bitflips recorded by the victim model (must stay 0
    /// for any deterministic mitigation, with or without BreakHammer).
    pub bitflips: usize,
    /// Per-thread flag: was the thread ever identified as a suspect?
    pub ever_suspect: Vec<bool>,
    /// BreakHammer statistics, when BreakHammer was attached.
    pub breakhammer: Option<BreakHammerStats>,
    /// Per-thread read-latency histograms (merged over all channels).
    pub latency: Vec<LatencyHistogram>,
    /// Per-memory-channel statistics breakdown (one entry per channel).
    #[serde(default)]
    pub per_channel: Vec<ChannelBreakdown>,
    /// End-of-run disturbance of every watched victim row (empty when the
    /// workload declared no victims). Not part of the digest-pinned surface.
    #[serde(default)]
    pub victims: Vec<VictimReport>,
    /// The security outcome under the configured fault model and ECC scheme
    /// (all zeros under the default hard-threshold model with no flips).
    #[serde(default)]
    pub outcome: AttackOutcome,
    /// Epoch-stepping counters (all zeros under serial stepping). *Not* part
    /// of the behavioural surface: serial-vs-parallel differential tests
    /// normalize this field to its default before comparing, since it
    /// describes how the run was scheduled, not what it computed.
    #[serde(default)]
    pub stepping: SteppingStats,
}

impl SimulationResult {
    /// IPC of a specific thread.
    pub fn ipc_of(&self, thread: ThreadId) -> f64 {
        self.cores[thread.index()].ipc
    }

    /// Sum of IPCs over the given threads (a raw throughput measure).
    pub fn total_ipc(&self, threads: &[usize]) -> f64 {
        threads.iter().map(|t| self.cores[*t].ipc).sum()
    }

    /// Merged read-latency histogram over the given threads (used for the
    /// benign-application latency curves of Figs. 11 and 17).
    pub fn merged_latency(&self, threads: &[usize]) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for t in threads {
            merged.merge(&self.latency[*t]);
        }
        merged
    }

    /// True if every listed core finished its instruction budget.
    pub fn all_finished(&self, threads: &[usize]) -> bool {
        threads.iter().all(|t| self.cores[*t].finished)
    }

    /// The largest disturbance any watched victim row accumulated (0 when no
    /// victims were watched) — the headline "did the victim data survive"
    /// number for scenario tables.
    pub fn max_victim_disturbance(&self) -> u64 {
        self.victims.iter().map(|v| v.disturbance).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SimulationResult {
        let cores = (0..4)
            .map(|i| CorePerformance {
                thread: ThreadId(i),
                instructions: 1000,
                cycles: 500 * (i as u64 + 1),
                ipc: 2.0 / (i as f64 + 1.0),
                finished: i < 3,
            })
            .collect();
        SimulationResult {
            cores,
            dram_cycles: 10_000,
            controller: ControllerStats::default(),
            dram: DramStats::default(),
            cache: CacheStats::default(),
            energy_nj: 123.0,
            preventive_actions: 7,
            bitflips: 0,
            ever_suspect: vec![false, false, false, true],
            breakhammer: None,
            latency: (0..4).map(|_| LatencyHistogram::new()).collect(),
            per_channel: Vec::new(),
            victims: Vec::new(),
            outcome: AttackOutcome::default(),
            stepping: SteppingStats::default(),
        }
    }

    #[test]
    fn accessors_work() {
        let r = result();
        assert_eq!(r.ipc_of(ThreadId(0)), 2.0);
        assert!((r.total_ipc(&[0, 1]) - 3.0).abs() < 1e-12);
        assert!(r.all_finished(&[0, 1, 2]));
        assert!(!r.all_finished(&[0, 3]));
        assert_eq!(r.merged_latency(&[0, 1]).count(), 0);
    }

    #[test]
    fn max_victim_disturbance_scans_the_reports() {
        let mut r = result();
        assert_eq!(r.max_victim_disturbance(), 0);
        let bank = bh_dram::BankAddr { rank: 0, bank_group: 0, bank: 0 };
        r.victims = vec![
            VictimReport { channel: 0, row: RowAddr { bank, row: 5 }, disturbance: 3, bitflips: 0 },
            VictimReport { channel: 1, row: RowAddr { bank, row: 7 }, disturbance: 9, bitflips: 1 },
        ];
        assert_eq!(r.max_victim_disturbance(), 9);
    }
}
