//! No-op derive macros backing the vendored `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are blanket-implemented
//! markers, so the derives have nothing to generate; they exist so that
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper attributes
//! parse exactly as they would against the real serde_derive.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
