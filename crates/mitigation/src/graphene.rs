//! Graphene: Misra–Gries-based aggressor-row tracking [Park et al., MICRO 2020].
//!
//! Graphene keeps, per bank, a Misra–Gries summary sized so that every row
//! activated more than its refresh threshold within one reset window is
//! guaranteed to be tracked. When a tracked row's counter crosses the
//! threshold, Graphene preventively refreshes the row's neighbours and resets
//! the counter. Tables are cleared every reset window (tREFW).

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use crate::misra_gries::MisraGries;
use bh_dram::{Cycle, DramGeometry, TimingParams};

/// The Graphene mechanism.
#[derive(Debug)]
pub struct Graphene {
    geometry: DramGeometry,
    blast_radius: usize,
    /// Activation count at which a tracked aggressor's victims are refreshed.
    threshold: u64,
    /// Misra–Gries table entries per bank.
    entries_per_bank: usize,
    tables: Vec<MisraGries>,
    window_cycles: Cycle,
    window_end: Cycle,
    triggers: u64,
}

impl Graphene {
    /// Creates Graphene for the given system and RowHammer threshold `nrh`.
    ///
    /// The refresh threshold is `N_RH / 4`, accounting for an aggressor's two
    /// neighbours and for disturbance carried across one window boundary; the
    /// table size is derived from the maximum number of activations a bank can
    /// receive within one reset window.
    ///
    /// # Panics
    /// Panics if `nrh < 4` or `blast_radius` is zero.
    pub fn new(
        geometry: DramGeometry,
        timing: &TimingParams,
        nrh: u64,
        blast_radius: usize,
    ) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        assert!(blast_radius > 0, "blast radius must be positive");
        let threshold = (nrh / 4).max(1);
        let window_cycles = timing.t_refw;
        let max_acts_per_window = (window_cycles / timing.t_rc).max(1);
        let entries_per_bank = (max_acts_per_window / threshold + 1) as usize;
        let banks = geometry.banks_per_channel();
        Graphene {
            geometry,
            blast_radius,
            threshold,
            entries_per_bank,
            tables: (0..banks).map(|_| MisraGries::new(entries_per_bank)).collect(),
            window_cycles,
            window_end: window_cycles,
            triggers: 0,
        }
    }

    /// The refresh threshold in use.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Misra–Gries entries per bank.
    pub fn entries_per_bank(&self) -> usize {
        self.entries_per_bank
    }

    /// Number of preventive refreshes triggered so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    fn maybe_reset_window(&mut self, cycle: Cycle) {
        if cycle >= self.window_end {
            for table in &mut self.tables {
                table.clear();
            }
            while cycle >= self.window_end {
                self.window_end += self.window_cycles;
            }
        }
    }
}

impl TriggerMechanism for Graphene {
    fn name(&self) -> &'static str {
        "Graphene"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Graphene
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        self.maybe_reset_window(event.cycle);
        let bank = self.geometry.flat_bank(event.row.bank);
        let count = self.tables[bank].record(event.row.row);
        if count >= self.threshold {
            self.tables[bank].reset_row(event.row.row);
            self.triggers += 1;
            sink.push_refresh_rows(self.geometry.neighbors(event.row, self.blast_radius));
        }
    }

    fn storage_bits(&self) -> u64 {
        let row_bits = (usize::BITS - (self.geometry.rows_per_bank - 1).leading_zeros()) as u64;
        let counter_bits = 64 - self.threshold.leading_zeros() as u64 + 1;
        let per_entry = row_bits + counter_bits;
        self.entries_per_bank as u64 * per_entry * self.geometry.banks_per_channel() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn mech(nrh: u64) -> Graphene {
        Graphene::new(DramGeometry::tiny(), &TimingParams::fast_test(), nrh, 1)
    }

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn refreshes_exactly_at_threshold() {
        let mut g = mech(64); // threshold 16
        assert_eq!(g.threshold(), 16);
        let mut actions = Vec::new();
        for i in 0..16 {
            actions = g.on_activation_vec(&event(30, i));
            if i < 15 {
                assert!(actions.is_empty(), "no trigger before threshold (i={i})");
            }
        }
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            PreventiveAction::RefreshRows(rows) => {
                assert_eq!(rows.len(), 2);
                assert!(rows.iter().any(|r| r.row == 29));
                assert!(rows.iter().any(|r| r.row == 31));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(g.triggers(), 1);
    }

    #[test]
    fn counter_resets_after_trigger_so_attack_needs_threshold_again() {
        let mut g = mech(64);
        let mut trigger_count = 0;
        for i in 0..64u64 {
            if !g.on_activation_vec(&event(30, i)).is_empty() {
                trigger_count += 1;
            }
        }
        // 64 activations at threshold 16 => 4 triggers.
        assert_eq!(trigger_count, 4);
    }

    #[test]
    fn tables_are_per_bank() {
        let mut g = mech(64);
        let other_bank = RowAddr { bank: BankAddr { rank: 1, bank_group: 1, bank: 1 }, row: 30 };
        // 15 activations in bank A, 15 in bank B: no trigger in either.
        for i in 0..15u64 {
            assert!(g.on_activation_vec(&event(30, i)).is_empty());
            let ev = ActivationEvent { row: other_bank, thread: ThreadId(1), cycle: i };
            assert!(g.on_activation_vec(&ev).is_empty());
        }
        assert_eq!(g.triggers(), 0);
    }

    #[test]
    fn window_reset_clears_counters() {
        let timing = TimingParams::fast_test();
        let mut g = Graphene::new(DramGeometry::tiny(), &timing, 64, 1);
        for i in 0..15u64 {
            assert!(g.on_activation_vec(&event(30, i)).is_empty());
        }
        // Jump past the reset window: the accumulated count is gone.
        let far = timing.t_refw + 10;
        assert!(g.on_activation_vec(&event(30, far)).is_empty());
        for i in 1..15u64 {
            assert!(g.on_activation_vec(&event(30, far + i)).is_empty(), "i={i}");
        }
        // The 16th activation after the reset triggers again.
        assert!(!g.on_activation_vec(&event(30, far + 20)).is_empty());
    }

    #[test]
    fn table_size_grows_as_nrh_decreases() {
        let big = mech(4096);
        let small = mech(64);
        assert!(small.entries_per_bank() > big.entries_per_bank());
        assert!(small.storage_bits() > big.storage_bits());
    }

    #[test]
    fn aggressor_never_exceeds_four_times_threshold_untracked() {
        // Misra-Gries + threshold guarantee: with heavy background noise the
        // hot row still triggers a refresh at most every `threshold`
        // activations (within the spillover error bound).
        let mut g = mech(256); // threshold 64
        let mut hot_since_refresh = 0u64;
        let mut worst = 0u64;
        for i in 0..30_000u64 {
            // Background noise over many rows.
            let noise_row = 2 + (i as usize % 100);
            g.on_activation_vec(&event(noise_row, i));
            // Hot aggressor row 1 every other activation.
            hot_since_refresh += 1;
            let acts = g.on_activation_vec(&event(1, i));
            if !acts.is_empty() {
                worst = worst.max(hot_since_refresh);
                hot_since_refresh = 0;
            }
        }
        assert!(worst > 0, "the hot row must have triggered refreshes");
        // The hot row is never hammered more than threshold + spillover slack
        // between consecutive preventive refreshes; allow 2x margin.
        assert!(worst <= 2 * g.threshold(), "worst gap {worst}");
    }

    #[test]
    fn metadata() {
        let g = mech(1024);
        assert_eq!(g.name(), "Graphene");
        assert_eq!(g.kind(), MechanismKind::Graphene);
        assert!(g.storage_bits() > 0);
    }
}
