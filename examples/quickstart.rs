//! Quickstart: build the paper's system at a reduced scale, run a four-core
//! workload with one RowHammer attacker, and show what BreakHammer changes.
//!
//! Run with: `cargo run --release --example quickstart`

use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{Evaluator, SystemConfig};
use breakhammer_suite::workloads::{MixBuilder, MixClass, TraceGenerator};

fn main() {
    // A scaled-down version of the paper's Table 1 system so the example runs
    // in seconds: Graphene protecting a DDR5 channel at N_RH = 128 (a
    // threshold the short run can exercise; the bench binaries sweep the full
    // 4K..64 range). The real DDR5 geometry is kept so workloads spread over
    // 64K-row banks; only the timings and budgets are shortened.
    let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    base.geometry = breakhammer_suite::dram::DramGeometry::paper_ddr5();
    base.instructions_per_core = 30_000;

    // One "HHHA" workload: three benign applications plus the attacker.
    let generator = TraceGenerator::new(base.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator);
    builder.benign_entries = 5_000;
    builder.attacker_entries = 5_000;
    let mix = builder.build(MixClass::attack_classes()[0], 0, 42);
    println!("workload {}: {:?} (attacker on core 3)", mix.name, mix.app_names);

    // Evaluate the mix with and without BreakHammer attached to Graphene.
    let mut with_bh = base.clone();
    with_bh.breakhammer = true;
    for (label, config) in [("Graphene", base), ("Graphene+BreakHammer", with_bh)] {
        let mut evaluator = Evaluator::new(config);
        let eval = evaluator.evaluate(&mix);
        println!("\n== {label} ==");
        println!("  weighted speedup (benign apps): {:.3}", eval.weighted_speedup);
        println!("  max slowdown (benign apps):     {:.3}", eval.max_slowdown);
        println!("  preventive actions performed:   {}", eval.preventive_actions());
        println!("  DRAM energy:                    {:.1} uJ", eval.energy_nj() / 1000.0);
        println!("  would-be RowHammer bitflips:    {}", eval.result.bitflips);
        if let Some(attacker) = mix.attacker_thread {
            println!("  attacker identified as suspect: {}", eval.result.ever_suspect[attacker]);
        }
    }
    println!("\nBreakHammer throttles the thread that keeps triggering Graphene's preventive");
    println!("refreshes, which restores the benign applications' performance without weakening");
    println!("the RowHammer protection (the bitflip count stays at zero in both runs).");
}
