//! Per Row Activation Counting (PRAC) with back-off [JEDEC DDR5, JESD79-5c].
//!
//! PRAC stores an activation counter inside every DRAM row. When a row's
//! counter crosses the back-off threshold, the DRAM chip asserts the
//! `alert_n` signal, and the memory controller must respond by issuing a
//! predetermined number of RFM commands, during which the chip preventively
//! refreshes the endangered victims. Because counting is exact and per-row,
//! PRAC triggers very few preventive actions for benign workloads at high
//! `N_RH` — but an attacker can still force frequent back-offs, which is the
//! behaviour BreakHammer exploits to identify and throttle the attacker.

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::DramGeometry;

/// The PRAC mechanism.
#[derive(Debug)]
pub struct Prac {
    geometry: DramGeometry,
    backoff_threshold: u64,
    rfms_per_alert: usize,
    /// Dense per-row in-DRAM activation counters, indexed by
    /// `flat_bank * rows_per_bank + row` — mirroring PRAC's actual storage
    /// (one counter per DRAM row) and keeping the per-activation update a
    /// single array increment.
    row_counts: Box<[u32]>,
    alerts: u64,
}

impl Prac {
    /// Creates PRAC for RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 4`.
    pub fn new(geometry: DramGeometry, nrh: u64) -> Self {
        assert!(nrh >= 4, "N_RH must be at least 4");
        // Back-off asserted at half the threshold, leaving the chip time to
        // refresh the victims before bitflips become possible.
        let backoff_threshold = (nrh / 2).max(2);
        assert!(backoff_threshold < u64::from(u32::MAX), "back-off threshold must fit in a u32");
        let rows = geometry.rows_per_channel();
        Prac {
            geometry,
            backoff_threshold,
            rfms_per_alert: 1,
            row_counts: vec![0; rows].into_boxed_slice(),
            alerts: 0,
        }
    }

    /// The back-off threshold in use.
    pub fn backoff_threshold(&self) -> u64 {
        self.backoff_threshold
    }

    /// Number of back-off (alert_n) events so far.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Number of RFM commands requested per back-off event.
    pub fn rfms_per_alert(&self) -> usize {
        self.rfms_per_alert
    }

    /// In-DRAM activation count of a row (for tests and statistics).
    pub fn row_count(&self, flat_bank: usize, row: usize) -> u64 {
        u64::from(self.row_counts[flat_bank * self.geometry.rows_per_bank + row])
    }
}

impl TriggerMechanism for Prac {
    fn name(&self) -> &'static str {
        "PRAC"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Prac
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        let bank = self.geometry.flat_bank(event.row.bank);
        let count = &mut self.row_counts[bank * self.geometry.rows_per_bank + event.row.row];
        *count += 1;
        if u64::from(*count) >= self.backoff_threshold {
            *count = 0;
            self.alerts += 1;
            for _ in 0..self.rfms_per_alert {
                sink.push_rfm(event.row.bank);
            }
        }
    }

    fn storage_bits(&self) -> u64 {
        // The per-row counters live inside the DRAM array; the controller only
        // needs the alert handling logic (modelled as negligible storage).
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn event(row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn backoff_fires_only_for_genuinely_hot_rows() {
        let mut p = Prac::new(DramGeometry::tiny(), 1024);
        assert_eq!(p.backoff_threshold(), 512);
        // A benign pattern cycling over many rows never trips the per-row
        // counter even after many total activations.
        for i in 0..5000u64 {
            assert!(p.on_activation_vec(&event((i % 64) as usize, i)).is_empty());
        }
        assert_eq!(p.alerts(), 0);
        // A hot row does.
        let mut fired = 0;
        for i in 0..512u64 {
            fired += p.on_activation_vec(&event(7, 10_000 + i)).len();
        }
        assert!(fired >= 1);
        assert_eq!(p.alerts() as usize, fired);
    }

    #[test]
    fn counter_resets_after_backoff() {
        let mut p = Prac::new(DramGeometry::tiny(), 64); // threshold 32
        let mut alerts = 0;
        for i in 0..128u64 {
            alerts += p.on_activation_vec(&event(3, i)).len();
        }
        assert_eq!(alerts, 4);
        assert_eq!(p.row_count(0, 3), 0);
    }

    #[test]
    fn alert_requests_configured_number_of_rfms() {
        let mut p = Prac::new(DramGeometry::tiny(), 64);
        assert_eq!(p.rfms_per_alert(), 1);
        let mut last = Vec::new();
        for i in 0..32u64 {
            let acts = p.on_activation_vec(&event(5, i));
            if !acts.is_empty() {
                last = acts;
            }
        }
        assert_eq!(last.len(), 1);
        assert!(matches!(last[0], PreventiveAction::IssueRfm { .. }));
    }

    #[test]
    fn metadata() {
        let p = Prac::new(DramGeometry::tiny(), 256);
        assert_eq!(p.name(), "PRAC");
        assert_eq!(p.kind(), MechanismKind::Prac);
        assert_eq!(p.storage_bits(), 0);
    }
}
