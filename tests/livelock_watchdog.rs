//! The forward-progress watchdog, end to end: an injected no-progress run is
//! classified [`TerminationReason::Livelock`] — not a hang, not a panic, not
//! an `ok`-looking cutoff — with a [`LivelockReport`] snapshot, and the
//! verdict is bit-identical across both scheduler kernels, both channel
//! stepping modes and both CPU front-ends. Healthy runs keep their
//! historical outcomes (`Completed` / `CycleCutoff`) untouched, and the
//! deterministic budgets cut runs with `BudgetExceeded` at exact epoch
//! boundaries.
//!
//! The injected livelock is `ChaosConfig::drop_fills_after`: from a given
//! DRAM cycle, completed memory responses stop filling the LLC, so every
//! core hard-stalls behind a miss that never returns — deterministic and
//! kernel-invariant by construction.

use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    ChannelStepping, FrontEndKind, SchedulerKind, SimulationResult, System, SystemConfig,
    TerminationReason,
};

mod common;
use common::{attack_traces, benign_traces};

/// A config whose run livelocks: fills dropped from cycle 1000 on, with a
/// tight watchdog so the verdict lands quickly.
fn livelock_config() -> SystemConfig {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.instructions_per_core = 50_000;
    config.chaos.drop_fills_after = Some(1_000);
    config.watchdog.epoch_cycles = 5_000;
    config.watchdog.stall_epochs = 4;
    config
}

/// `stepping` describes how the run was scheduled, not what it computed;
/// zero it before comparing across kernels/stepping modes.
fn normalized(mut result: SimulationResult) -> SimulationResult {
    result.stepping = Default::default();
    result
}

#[test]
fn injected_no_progress_run_is_classified_livelock_across_the_whole_matrix() {
    let base = livelock_config();
    let traces = benign_traces(&base, 2_000, 7);
    let mut results = Vec::new();
    for (scheduler, stepping) in [
        (SchedulerKind::PerCycle, ChannelStepping::Serial),
        (SchedulerKind::EventDriven, ChannelStepping::Serial),
        (SchedulerKind::EventDriven, ChannelStepping::Parallel),
    ] {
        for front_end in [FrontEndKind::Legacy, FrontEndKind::Engine] {
            let mut config = base.clone();
            config.scheduler = scheduler;
            config.stepping = stepping;
            config.front_end = front_end;
            let label = format!("{scheduler:?}/{stepping:?}/{front_end:?}");
            let result = normalized(System::new(config, &traces, vec![0, 1, 2, 3]).run());
            assert_eq!(
                result.termination,
                TerminationReason::Livelock,
                "{label}: {:?}",
                result.termination
            );
            results.push((label, result));
        }
    }

    // The verdict, the report and the whole result are bit-identical across
    // the kernel × stepping × front-end matrix.
    let (reference_label, reference) = &results[0];
    for (label, result) in &results[1..] {
        assert_eq!(result, reference, "{label} diverged from {reference_label}");
    }

    // The report is a faithful snapshot of the stuck machine.
    let report = reference.livelock.as_ref().expect("livelock verdicts carry a report");
    assert_eq!(report.detected_at, reference.dram_cycles, "run stops at the verdict boundary");
    assert_eq!(report.detected_at % 5_000, 0, "verdicts land on epoch boundaries");
    assert_eq!(report.zero_progress_epochs, 4);
    assert!(!report.fixpoint, "the zero-progress detector fires first on a frozen machine");
    assert_eq!(report.cores.len(), 4);
    assert!(
        report.cores.iter().all(|c| !c.finished && c.hard_stalled),
        "every core is hard-stalled behind a dropped fill: {report:?}"
    );
    assert!(report.instructions_retired > 0, "the run made progress before the injection");
    assert!(reference.cores.iter().all(|c| !c.finished));
    let rendered = report.to_string();
    assert!(rendered.contains("livelock at cycle"), "{rendered}");
    assert!(rendered.contains("hard-stalled"), "{rendered}");
}

#[test]
fn healthy_runs_complete_with_no_verdict() {
    let config = SystemConfig::fast_test(MechanismKind::Graphene, 256, true);
    let traces = benign_traces(&config, 3_000, 11);
    let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
    assert!(result.all_finished(&[0, 1, 2, 3]));
    assert_eq!(result.termination, TerminationReason::Completed);
    assert!(result.livelock.is_none());
}

/// The stall-heavy cutoff scenario of `cutoff_accounting.rs`: the controller
/// keeps serving reads throughout (progress never stops), so the default-on
/// watchdog must not reclassify the cutoff.
#[test]
fn slow_but_progressing_cutoff_stays_cycle_cutoff() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.instructions_per_core = 500_000;
    config.max_dram_cycles = 200_000;
    config.cache.mshrs = 4;
    // Tight watchdog epochs: many boundaries fall inside the run, and every
    // one of them must observe progress.
    config.watchdog.epoch_cycles = 5_000;
    config.watchdog.stall_epochs = 4;
    let traces = attack_traces(&config, 1_200, 23);
    let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
    assert_eq!(result.termination, TerminationReason::CycleCutoff);
    assert!(result.livelock.is_none());
    assert_eq!(result.dram_cycles, 200_000);
}

#[test]
fn disabled_watchdog_burns_the_injected_livelock_to_the_cutoff() {
    let mut config = livelock_config();
    config.watchdog.enabled = false;
    config.max_dram_cycles = 60_000;
    let traces = benign_traces(&config, 2_000, 7);
    let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
    // The historical behaviour: the zombie run silently burns to the cutoff.
    assert_eq!(result.termination, TerminationReason::CycleCutoff);
    assert!(result.livelock.is_none());
    assert_eq!(result.dram_cycles, 60_000);
}

#[test]
fn epoch_budget_cuts_the_run_at_an_exact_boundary() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
    config.watchdog.epoch_cycles = 1_000;
    config.watchdog.max_epochs = 2;
    let traces = benign_traces(&config, 2_000, 7);
    for scheduler in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
        let mut config = config.clone();
        config.scheduler = scheduler;
        let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
        assert_eq!(result.termination, TerminationReason::BudgetExceeded, "{scheduler:?}");
        assert!(result.livelock.is_none(), "budget verdicts carry no livelock report");
        // Epochs 1 and 2 pass; the third boundary (cycle 3000) is over
        // budget — on both kernels.
        assert_eq!(result.dram_cycles, 3_000, "{scheduler:?}");
    }
}

#[test]
fn preventive_action_budget_cuts_an_attack_run() {
    let mut config = SystemConfig::fast_test(MechanismKind::Para, 64, false);
    config.watchdog.epoch_cycles = 2_000;
    config.watchdog.max_preventive_actions = 5;
    let traces = attack_traces(&config, 2_000, 23);
    let result = System::new(config.clone(), &traces, vec![0, 1, 2]).run();
    assert_eq!(result.termination, TerminationReason::BudgetExceeded);
    assert!(
        result.preventive_actions > 5,
        "PARA under attack blows a 5-action budget: {}",
        result.preventive_actions
    );
    assert_eq!(result.dram_cycles % 2_000, 0, "budget verdicts land on epoch boundaries");

    // The same run without the budget completes normally.
    config.watchdog.max_preventive_actions = 0;
    let free = System::new(config, &traces, vec![0, 1, 2]).run();
    assert_eq!(free.termination, TerminationReason::Completed);
}

/// The campaign store keys its status taxonomy off these labels; pin them.
#[test]
fn termination_labels_are_stable() {
    assert_eq!(TerminationReason::Completed.label(), "completed");
    assert_eq!(TerminationReason::CycleCutoff.label(), "cutoff");
    assert_eq!(TerminationReason::Livelock.label(), "livelock");
    assert_eq!(TerminationReason::BudgetExceeded.label(), "budget");
    assert_eq!(TerminationReason::default(), TerminationReason::Completed);
}
