//! Checkpoint/resume campaign engine.
//!
//! A campaign is a (configuration × mix × seed) grid of *cells*. The engine
//! streams each completed cell to a JSONL *result store* — one self-contained
//! JSON object per line, flushed as soon as the cell finishes — so a killed
//! sweep loses at most the cells in flight. Resuming parses the store,
//! collects the completed cell ids and skips them; an interrupted sweep
//! followed by a resume produces the same result set as an uninterrupted
//! sweep (cells are deterministic, only their order in the file differs).
//!
//! Cell identity is `"<config digest>/<mix name>/<seed>"`, where the digest
//! is FNV-1a-64 over the configuration's `Debug` representation — any
//! configuration change (mechanism, threshold, timing, scale) changes the
//! digest, so a store can never silently mix results from different sweeps.
//!
//! The JSONL reader/writer is hand-rolled (the workspace vendors no JSON
//! crate); it covers exactly the flat objects the engine emits.

// Hash collections are deliberate here: completed-cell ids and report
// groups are membership/grouping state whose output is explicitly sorted
// before display, and bh-bench is outside the digest-pinned set.
#![allow(clippy::disallowed_types)]

use crate::experiments::{evaluate_jobs, paper_config, EvalHooks, RunRecord, Scale};
use crate::Campaign;
use bh_mitigation::MechanismKind;
use bh_sim::{SystemConfig, TerminationReason};
use bh_stats::{fmt3, Table};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Version tag written into every result line; bump on schema changes so
/// readers can reject stores written by an incompatible engine.
///
/// v3 widened the per-cell `status` taxonomy to
/// `"ok" | "failed" | "livelock" | "budget"` (a typed run outcome instead of
/// ok-or-panic), added the `termination` field plus the rendered
/// `livelock_report` snapshot, and sealed every line with a trailing FNV-1a
/// `crc` field so torn or spliced lines are rejected instead of misread.
/// v2 added the `status` field (`"ok"` / `"failed"`), the attack-outcome
/// fields and failed-cell lines. Older stores parse to nothing, so resuming
/// one with a v3 engine reruns every cell.
pub const SCHEMA_VERSION: u64 = 3;

// --- cell identity ----------------------------------------------------------

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest identifying a system configuration inside cell ids: FNV-1a-64 over
/// the `Debug` representation, which covers every field (timings, caches,
/// mechanism parameters — not just the mechanism/N_RH headline).
pub fn config_digest(config: &SystemConfig) -> String {
    format!("{:016x}", fnv1a64(format!("{config:?}").as_bytes()))
}

/// The identity of one campaign cell: configuration digest, mix name and
/// workload seed. This is what resume matches on.
pub fn cell_id(config: &SystemConfig, mix_name: &str, seed: u64) -> String {
    format!("{}/{mix_name}/{seed}", config_digest(config))
}

// --- line seal --------------------------------------------------------------

/// Seals a serialised line (which must be a complete `{…}` object) by
/// appending a final `"crc"` field: FNV-1a-64 over the line *without* the crc
/// field. A torn write, a spliced hybrid of two records, or any in-place edit
/// breaks the seal, and every reader drops the line instead of misreading it.
fn seal_line(mut line: String) -> String {
    debug_assert!(line.ends_with('}'), "seal_line wants a complete object");
    let crc = fnv1a64(line.as_bytes());
    line.pop();
    line.push_str(&format!(",\"crc\":\"{crc:016x}\"}}"));
    line
}

/// True if `line` ends with a `"crc"` seal that matches its own content.
fn seal_intact(line: &str) -> bool {
    let line = line.trim_end();
    let Some(idx) = line.rfind(",\"crc\":\"") else { return false };
    let Some(hex) = line[idx..].strip_prefix(",\"crc\":\"").and_then(|t| t.strip_suffix("\"}"))
    else {
        return false;
    };
    let Ok(crc) = u64::from_str_radix(hex, 16) else { return false };
    let mut body = line[..idx].to_string();
    body.push('}');
    fnv1a64(body.as_bytes()) == crc
}

// --- minimal JSON -----------------------------------------------------------

/// A JSON scalar as it appears in a result line (the schema is flat: no
/// nested objects or arrays besides the latency triple, which is flattened
/// into three keys on write).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serialises one key/value pair into `out` (which must already hold the
/// object opener or a previous pair).
fn push_field(out: &mut String, key: &str, value: &Json) {
    if !out.ends_with('{') {
        out.push(',');
    }
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
    match value {
        Json::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        // `{}` on finite f64 round-trips exactly and never uses an exponent;
        // non-finite values are not valid JSON, so they degrade to null (the
        // line then fails record parsing and the cell reruns on resume).
        Json::Num(v) if v.is_finite() => out.push_str(&v.to_string()),
        Json::Num(_) | Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, want: u8) -> Option<()> {
        (self.bump()? == want).then_some(())
    }

    /// Parses a `"…"` string (the opening quote not yet consumed).
    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + (self.bump()? as char).to_digit(16)?;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        while self.peek().is_some_and(|n| n & 0xc0 == 0x80) {
                            self.pos += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.literal("true").map(|_| Json::Bool(true)),
            b'f' => self.literal("false").map(|_| Json::Bool(false)),
            b'n' => self.literal("null").map(|_| Json::Null),
            _ => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .ok()?
                    .parse::<f64>()
                    .ok()
                    .map(Json::Num)
            }
        }
    }

    fn literal(&mut self, word: &str) -> Option<()> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Some(())
    }
}

/// Parses one result line into its key → value map. Returns `None` on any
/// syntax error (resume treats such lines as incomplete cells).
fn parse_object(line: &str) -> Option<HashMap<String, Json>> {
    let mut s = Scanner::new(line);
    s.skip_ws();
    s.expect(b'{')?;
    let mut map = HashMap::new();
    s.skip_ws();
    if s.peek() == Some(b'}') {
        s.bump();
    } else {
        loop {
            s.skip_ws();
            let key = s.string()?;
            s.skip_ws();
            s.expect(b':')?;
            s.skip_ws();
            map.insert(key, s.value()?);
            s.skip_ws();
            match s.bump()? {
                b',' => continue,
                b'}' => break,
                _ => return None,
            }
        }
    }
    s.skip_ws();
    s.peek().is_none().then_some(map)
}

// --- result lines -----------------------------------------------------------

/// One completed cell parsed back from a result store.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Cell id (`"<config digest>/<mix>/<seed>"`).
    pub cell: String,
    /// Mechanism label (round-trips through [`MechanismKind::parse`]).
    pub mechanism: String,
    /// RowHammer threshold.
    pub nrh: u64,
    /// Whether BreakHammer was attached.
    pub breakhammer: bool,
    /// Workload-generation seed of the cell.
    pub seed: u64,
    /// Mix instance name.
    pub mix: String,
    /// Mix class label.
    pub mix_class: String,
    /// Attack-scenario tag (`None` for classic/benign mixes).
    pub scenario: Option<String>,
    /// Whether the sweep used the attack suite.
    pub attack: bool,
    /// Weighted speedup over the benign applications.
    pub weighted_speedup: f64,
    /// Maximum slowdown of a benign application.
    pub max_slowdown: f64,
    /// DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed.
    pub preventive_actions: u64,
    /// Benign memory-latency percentiles in nanoseconds (p50, p90, p99).
    pub latency_ns: [f64; 3],
    /// True if the attacker thread was flagged as a suspect.
    pub attacker_identified: bool,
    /// True if a benign thread was flagged as a suspect.
    pub benign_misidentified: bool,
    /// Would-be RowHammer bitflips.
    pub bitflips: u64,
    /// Largest end-of-run disturbance of any watched victim row.
    pub max_victim_disturbance: u64,
    /// Raw bit-flips before ECC (the fault model's output).
    pub flips_raw: u64,
    /// Flips corrected by ECC.
    pub flips_corrected: u64,
    /// Flips detected but not corrected (machine-check events).
    pub flips_detected: u64,
    /// Flips that escaped ECC silently.
    pub flips_silent: u64,
    /// Whether the cell satisfied its mix's attack-success criterion.
    pub attack_success: bool,
    /// Run-outcome status of the cell: `"ok"` (completed or hit the cycle
    /// cutoff), `"livelock"` (the forward-progress watchdog fired) or
    /// `"budget"` (a deterministic per-run budget was exceeded). Panicked
    /// cells are [`FailedCell`]s, not `CellRecord`s.
    pub status: String,
    /// The simulator's termination label (`"completed"`, `"cutoff"`,
    /// `"livelock"`, `"budget"`) — finer than `status`, which folds the two
    /// healthy outcomes into `"ok"`.
    pub termination: String,
    /// Rendered [`bh_sim::LivelockReport`] snapshot (`None` unless `status`
    /// is `"livelock"`).
    pub livelock_report: Option<String>,
}

impl CellRecord {
    /// True for cells whose run ended healthily (completed or cycle cutoff).
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }
}

/// The store status a run outcome maps to: both healthy endings are `"ok"`;
/// the watchdog verdicts get their own statuses so `resume` can settle them
/// and `report --strict` can flag them.
pub fn termination_status(termination: TerminationReason) -> &'static str {
    match termination {
        TerminationReason::Completed | TerminationReason::CycleCutoff => "ok",
        TerminationReason::Livelock => "livelock",
        TerminationReason::BudgetExceeded => "budget",
    }
}

/// Serialises one evaluated cell as a single sealed JSONL line (no trailing
/// newline). The line's `status` reflects the run's termination: `"ok"`,
/// `"livelock"` or `"budget"`.
pub fn record_line(cell: &str, seed: u64, attack: bool, r: &RunRecord) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    push_field(&mut out, "schema", &Json::Num(SCHEMA_VERSION as f64));
    push_field(&mut out, "status", &Json::Str(termination_status(r.termination).to_string()));
    push_field(&mut out, "cell", &Json::Str(cell.to_string()));
    push_field(&mut out, "mechanism", &Json::Str(r.mechanism.to_string()));
    push_field(&mut out, "nrh", &Json::Num(r.nrh as f64));
    push_field(&mut out, "breakhammer", &Json::Bool(r.breakhammer));
    push_field(&mut out, "seed", &Json::Num(seed as f64));
    push_field(&mut out, "mix", &Json::Str(r.mix_name.clone()));
    push_field(&mut out, "mix_class", &Json::Str(r.mix_class.clone()));
    let scenario = match &r.scenario {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    };
    push_field(&mut out, "scenario", &scenario);
    push_field(&mut out, "attack", &Json::Bool(attack));
    push_field(&mut out, "weighted_speedup", &Json::Num(r.weighted_speedup));
    push_field(&mut out, "max_slowdown", &Json::Num(r.max_slowdown));
    push_field(&mut out, "energy_nj", &Json::Num(r.energy_nj));
    push_field(&mut out, "preventive_actions", &Json::Num(r.preventive_actions as f64));
    push_field(&mut out, "latency_p50_ns", &Json::Num(r.latency_ns[0]));
    push_field(&mut out, "latency_p90_ns", &Json::Num(r.latency_ns[1]));
    push_field(&mut out, "latency_p99_ns", &Json::Num(r.latency_ns[2]));
    push_field(&mut out, "attacker_identified", &Json::Bool(r.attacker_identified));
    push_field(&mut out, "benign_misidentified", &Json::Bool(r.benign_misidentified));
    push_field(&mut out, "bitflips", &Json::Num(r.bitflips as f64));
    push_field(&mut out, "max_victim_disturbance", &Json::Num(r.max_victim_disturbance as f64));
    push_field(&mut out, "flips_raw", &Json::Num(r.flips_raw as f64));
    push_field(&mut out, "flips_corrected", &Json::Num(r.flips_corrected as f64));
    push_field(&mut out, "flips_detected", &Json::Num(r.flips_detected as f64));
    push_field(&mut out, "flips_silent", &Json::Num(r.flips_silent as f64));
    push_field(&mut out, "attack_success", &Json::Bool(r.attack_success));
    push_field(&mut out, "termination", &Json::Str(r.termination.label().to_string()));
    let report = match &r.livelock {
        Some(report) => Json::Str(report.clone()),
        None => Json::Null,
    };
    push_field(&mut out, "livelock_report", &report);
    out.push('}');
    seal_line(out)
}

/// Serialises one *failed* cell (a cell whose evaluation panicked) as a
/// single JSONL line. Failed lines keep the sweep's checkpoint stream
/// append-only — the panic is recorded instead of killing the sweep — and
/// are retried by `resume` (they never count as completed).
pub fn failed_line(cell: &str, seed: u64, attack: bool, error: &str) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_field(&mut out, "schema", &Json::Num(SCHEMA_VERSION as f64));
    push_field(&mut out, "status", &Json::Str("failed".to_string()));
    push_field(&mut out, "cell", &Json::Str(cell.to_string()));
    push_field(&mut out, "seed", &Json::Num(seed as f64));
    push_field(&mut out, "attack", &Json::Bool(attack));
    push_field(&mut out, "error", &Json::Str(error.to_string()));
    out.push('}');
    seal_line(out)
}

impl CellRecord {
    /// Parses one store line; `None` for malformed, schema-mismatched or
    /// seal-broken lines (e.g. a line truncated by a kill mid-write, or a
    /// torn write splicing two records together).
    pub fn parse(line: &str) -> Option<Self> {
        if !seal_intact(line) {
            return None;
        }
        let map = parse_object(line)?;
        let num = |key: &str| match map.get(key) {
            Some(Json::Num(v)) => Some(*v),
            _ => None,
        };
        let int = |key: &str| num(key).filter(|v| *v >= 0.0).map(|v| v as u64);
        let string = |key: &str| match map.get(key) {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let boolean = |key: &str| match map.get(key) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        };
        if int("schema")? != SCHEMA_VERSION {
            return None;
        }
        let status = string("status")?;
        if !matches!(status.as_str(), "ok" | "livelock" | "budget") {
            return None;
        }
        Some(CellRecord {
            status,
            termination: string("termination")?,
            livelock_report: match map.get("livelock_report")? {
                Json::Str(s) => Some(s.clone()),
                Json::Null => None,
                _ => return None,
            },
            cell: string("cell")?,
            mechanism: string("mechanism")?,
            nrh: int("nrh")?,
            breakhammer: boolean("breakhammer")?,
            seed: int("seed")?,
            mix: string("mix")?,
            mix_class: string("mix_class")?,
            scenario: match map.get("scenario")? {
                Json::Str(s) => Some(s.clone()),
                Json::Null => None,
                _ => return None,
            },
            attack: boolean("attack")?,
            weighted_speedup: num("weighted_speedup")?,
            max_slowdown: num("max_slowdown")?,
            energy_nj: num("energy_nj")?,
            preventive_actions: int("preventive_actions")?,
            latency_ns: [num("latency_p50_ns")?, num("latency_p90_ns")?, num("latency_p99_ns")?],
            attacker_identified: boolean("attacker_identified")?,
            benign_misidentified: boolean("benign_misidentified")?,
            bitflips: int("bitflips")?,
            max_victim_disturbance: int("max_victim_disturbance")?,
            flips_raw: int("flips_raw")?,
            flips_corrected: int("flips_corrected")?,
            flips_detected: int("flips_detected")?,
            flips_silent: int("flips_silent")?,
            attack_success: boolean("attack_success")?,
        })
    }
}

/// One failed cell parsed back from a result store (a cell whose evaluation
/// panicked; `resume` retries it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// Cell id (`"<config digest>/<mix>/<seed>"`).
    pub cell: String,
    /// The panic message recorded when the cell failed.
    pub error: String,
}

impl FailedCell {
    /// Parses one store line as a failed-cell record; `None` for anything
    /// else (evaluated cells, malformed or seal-broken lines, foreign
    /// schemas).
    pub fn parse(line: &str) -> Option<Self> {
        if !seal_intact(line) {
            return None;
        }
        let map = parse_object(line)?;
        let string = |key: &str| match map.get(key) {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        match map.get("schema") {
            Some(Json::Num(v)) if *v == SCHEMA_VERSION as f64 => {}
            _ => return None,
        }
        if string("status")? != "failed" {
            return None;
        }
        Some(FailedCell { cell: string("cell")?, error: string("error")? })
    }
}

/// One well-formed line of a result store: an evaluated cell (status `"ok"`,
/// `"livelock"` or `"budget"`) or a recorded failure. Malformed lines
/// (truncated, garbage, seal-broken, foreign schema) parse to neither and
/// are skipped by every reader.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreEntry {
    /// An evaluated cell with its measurements and run outcome (boxed: a
    /// record is an order of magnitude larger than a failure note).
    Completed(Box<CellRecord>),
    /// A cell whose evaluation panicked.
    Failed(FailedCell),
}

impl StoreEntry {
    /// Parses one store line; `None` for malformed or foreign lines.
    pub fn parse(line: &str) -> Option<Self> {
        if let Some(record) = CellRecord::parse(line) {
            return Some(StoreEntry::Completed(Box::new(record)));
        }
        FailedCell::parse(line).map(StoreEntry::Failed)
    }
}

// --- result store -----------------------------------------------------------

/// Append-only JSONL store of evaluated cells, flushed per line so an
/// interrupted sweep checkpoints everything that finished.
pub struct ResultStore {
    path: PathBuf,
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore").field("path", &self.path).finish_non_exhaustive()
    }
}

impl ResultStore {
    /// Creates a fresh store. Refuses a path that already holds data — a
    /// half-finished sweep must be continued with [`ResultStore::append_to`]
    /// (the CLI's `resume`), not silently truncated.
    pub fn create(path: &Path) -> io::Result<Self> {
        if path.exists() && std::fs::metadata(path)?.len() > 0 {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "result store {} already holds data; use resume (or remove it) instead of overwriting",
                    path.display()
                ),
            ));
        }
        let file = File::create(path)?;
        Ok(Self::with_writer(path, Box::new(file)))
    }

    /// Opens an existing store for appending. Refuses a missing path — there
    /// is nothing to resume from.
    pub fn append_to(path: &Path) -> io::Result<Self> {
        if !path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("result store {} does not exist; run a sweep first", path.display()),
            ));
        }
        // A store killed mid-append can end with a torn line and no trailing
        // newline. Appending straight after it would glue the next record
        // onto the torn tail, corrupting that record too — terminate the
        // tail first so every new line starts at column zero. (The torn line
        // itself stays in the file; its broken crc seal makes every reader
        // drop it, and its cell reruns.)
        let needs_newline = {
            let mut file = File::open(path)?;
            if file.metadata()?.len() == 0 {
                false
            } else {
                file.seek(SeekFrom::End(-1))?;
                let mut last = [0u8; 1];
                file.read_exact(&mut last)?;
                last[0] != b'\n'
            }
        };
        let mut file = OpenOptions::new().append(true).open(path)?;
        if needs_newline {
            file.write_all(b"\n")?;
        }
        Ok(Self::with_writer(path, Box::new(file)))
    }

    /// Builds a store around an arbitrary writer. `path` is only used in
    /// error messages and by [`ResultStore::path`]. This is the injection
    /// point the chaos tests use to drive I/O faults (transient and
    /// persistent write failures) through [`ResultStore::append`]; production
    /// stores come from [`ResultStore::create`] / [`ResultStore::append_to`].
    pub fn with_writer(path: &Path, writer: Box<dyn Write + Send>) -> Self {
        ResultStore { path: path.to_path_buf(), writer: Mutex::new(BufWriter::new(writer)) }
    }

    /// The file backing the store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one line and flushes it — the per-cell checkpoint.
    ///
    /// Transient flush errors (an NFS hiccup, a momentary ENOSPC) are
    /// retried a bounded number of times with exponential backoff before
    /// giving up: an hours-long sweep should not die on one blip. Only the
    /// flush is retried — the `BufWriter` tracks how much of its buffer a
    /// partial flush consumed, so re-flushing never duplicates bytes,
    /// whereas re-running the buffered write itself would.
    ///
    /// # Panics
    /// Panics — naming the store path — if buffering the line fails or the
    /// flush still fails after every retry: the store *is* the sweep's
    /// output, there is nothing sensible to degrade to.
    pub fn append(&self, line: &str) {
        const ATTEMPTS: u32 = 5;
        // A worker that panicked while holding the lock leaves at most one
        // torn line behind, and the per-line crc seal rejects torn lines on
        // read — so a poisoned lock is safe to recover instead of cascading
        // the panic into every other worker's checkpoint.
        let mut writer = self.writer.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        writeln!(writer, "{line}").unwrap_or_else(|e| {
            panic!("buffering a result line for {} failed: {e}", self.path.display())
        });
        let mut backoff = std::time::Duration::from_millis(10);
        for attempt in 1..=ATTEMPTS {
            match writer.flush() {
                Ok(()) => return,
                Err(e) if attempt == ATTEMPTS => panic!(
                    "flushing the campaign result store {} failed after {ATTEMPTS} attempts: {e}",
                    self.path.display()
                ),
                Err(_) => {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }

    /// Every well-formed entry of a store (completed and failed cells), in
    /// file order. Malformed lines — truncated tails, interior garbage,
    /// half-overwritten records — are skipped; their cells rerun on resume.
    pub fn entries(path: &Path) -> io::Result<Vec<StoreEntry>> {
        let mut entries = Vec::new();
        for line in BufReader::new(File::open(path)?).lines() {
            if let Some(entry) = StoreEntry::parse(&line?) {
                entries.push(entry);
            }
        }
        Ok(entries)
    }

    /// The set of *settled* cell ids recorded in a store: every evaluated
    /// cell, whatever its outcome (`"ok"`, `"livelock"`, `"budget"`). This is
    /// the skip set `resume` uses — a livelock or budget verdict is
    /// deterministic, so rerunning the cell would reproduce it, not fix it.
    /// Malformed lines and failed (panicked) cells are not settled; their
    /// cells rerun on resume.
    pub fn settled_cells(path: &Path) -> io::Result<HashSet<String>> {
        Ok(Self::entries(path)?
            .into_iter()
            .filter_map(|entry| match entry {
                StoreEntry::Completed(record) => Some(record.cell),
                StoreEntry::Failed(_) => None,
            })
            .collect())
    }

    /// The set of cell ids with a healthy (`"ok"`) record in a store.
    /// Livelock/budget verdicts and failed cells are excluded.
    pub fn completed_cells(path: &Path) -> io::Result<HashSet<String>> {
        Ok(Self::entries(path)?
            .into_iter()
            .filter_map(|entry| match entry {
                StoreEntry::Completed(record) if record.is_ok() => Some(record.cell),
                _ => None,
            })
            .collect())
    }

    /// Every evaluated cell whose run ended with a watchdog verdict
    /// (`"livelock"` or `"budget"`), in file order, first verdict per cell.
    pub fn verdict_cells(path: &Path) -> io::Result<Vec<CellRecord>> {
        let mut seen = HashSet::new();
        Ok(Self::entries(path)?
            .into_iter()
            .filter_map(|entry| match entry {
                StoreEntry::Completed(record) if !record.is_ok() => Some(*record),
                _ => None,
            })
            .filter(|record| seen.insert(record.cell.clone()))
            .collect())
    }

    /// Every well-formed cell record of a store, in file order (failed cells
    /// excluded; livelock/budget verdicts included — filter on
    /// [`CellRecord::is_ok`] before aggregating performance numbers).
    pub fn load(path: &Path) -> io::Result<Vec<CellRecord>> {
        Ok(Self::entries(path)?
            .into_iter()
            .filter_map(|entry| match entry {
                StoreEntry::Completed(record) => Some(*record),
                StoreEntry::Failed(_) => None,
            })
            .collect())
    }

    /// The failed cells still pending a retry: cells with a `"failed"` line
    /// and no later completed line (a resume that succeeds leaves the old
    /// failed line in place — the store is append-only).
    pub fn failed_cells(path: &Path) -> io::Result<Vec<FailedCell>> {
        let entries = Self::entries(path)?;
        let completed: HashSet<&str> = entries
            .iter()
            .filter_map(|entry| match entry {
                StoreEntry::Completed(record) => Some(record.cell.as_str()),
                StoreEntry::Failed(_) => None,
            })
            .collect();
        let mut seen = HashSet::new();
        Ok(entries
            .iter()
            .filter_map(|entry| match entry {
                StoreEntry::Failed(f) if !completed.contains(f.cell.as_str()) => Some(f.clone()),
                _ => None,
            })
            .filter(|f| seen.insert(f.cell.clone()))
            .collect())
    }
}

// --- wall-clock overseer ----------------------------------------------------

/// Last-resort wall-clock watchdog over in-flight campaign cells.
///
/// The simulator's own forward-progress watchdog is deterministic and lives
/// inside the sim crates; this overseer is the safety net *around* it — if a
/// cell somehow runs past a wall-clock budget (a sim bug the deterministic
/// watchdog misses, a pathological configuration with the watchdog disabled),
/// it warns on stderr, once per cell, and keeps the sweep running. It never
/// influences results, so keeping it (and the only wall-clock reads of the
/// workspace outside benches) confined to the campaign layer preserves the
/// sim crates' determinism lint.
#[derive(Debug)]
pub struct CellOverseer {
    shared: Arc<OverseerShared>,
    watcher: Option<std::thread::JoinHandle<()>>,
}

#[derive(Debug)]
struct OverseerShared {
    timeout: Duration,
    state: Mutex<OverseerState>,
    wakeup: Condvar,
}

#[derive(Debug, Default)]
struct OverseerState {
    running: HashMap<String, Instant>,
    overdue: Vec<String>,
    stop: bool,
}

impl CellOverseer {
    /// Builds an overseer from `BH_CELL_TIMEOUT_SECS`; `None` when the knob
    /// is unset (the default — no wall clock is read at all).
    pub fn from_env() -> Option<Self> {
        let secs = bh_core::knobs::positive_usize("BH_CELL_TIMEOUT_SECS", "no overseer")?;
        Some(Self::new(Duration::from_secs(secs as u64)))
    }

    /// Starts an overseer with an explicit per-cell wall-clock budget.
    pub fn new(timeout: Duration) -> Self {
        let shared = Arc::new(OverseerShared {
            timeout,
            state: Mutex::new(OverseerState::default()),
            wakeup: Condvar::new(),
        });
        let watcher_shared = Arc::clone(&shared);
        let watcher = std::thread::spawn(move || watcher_shared.watch());
        CellOverseer { shared, watcher: Some(watcher) }
    }

    /// Marks a cell as in flight (called when a worker claims it).
    // The overseer is the one deliberate wall-clock consumer outside the
    // benches: it only warns, never feeds results (bh_analyze D2 exempts
    // bh-bench for exactly this kind of harness machinery).
    #[allow(clippy::disallowed_methods)]
    pub fn begin(&self, cell: &str) {
        let mut state = self.shared.lock_state();
        state.running.insert(cell.to_string(), Instant::now());
    }

    /// Marks a cell as finished (completed or panicked) — it is no longer
    /// watched.
    pub fn finish(&self, cell: &str) {
        let mut state = self.shared.lock_state();
        state.running.remove(cell);
    }

    /// The cells that exceeded the wall-clock budget so far, in detection
    /// order (each warned once on stderr).
    pub fn overdue_cells(&self) -> Vec<String> {
        self.shared.lock_state().overdue.clone()
    }
}

impl Drop for CellOverseer {
    fn drop(&mut self) {
        self.shared.lock_state().stop = true;
        self.shared.wakeup.notify_all();
        if let Some(watcher) = self.watcher.take() {
            // The watcher only sleeps and prints; a panic there must not
            // cascade into the sweep's teardown.
            let _ = watcher.join();
        }
    }
}

impl OverseerShared {
    /// Locks the state, recovering from poison: the state is a plain map of
    /// start times, valid after any panic.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, OverseerState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    // Wall clock is this thread's whole job: measuring how long cells have
    // been in flight. Warn-only — results never depend on it.
    #[allow(clippy::disallowed_methods)]
    fn watch(&self) {
        let mut state = self.lock_state();
        loop {
            if state.stop {
                return;
            }
            let now = Instant::now();
            let over: Vec<String> = state
                .running
                .iter()
                .filter(|(_, started)| now.duration_since(**started) >= self.timeout)
                .map(|(cell, _)| cell.clone())
                .collect();
            for cell in over {
                state.running.remove(&cell);
                state.overdue.push(cell.clone());
                eprintln!(
                    "warning: campaign cell {cell} has been running for over {:?} of wall \
                     clock; the sweep continues — check the deterministic watchdog \
                     configuration (BH_WATCHDOG_*) if this cell never settles",
                    self.timeout
                );
            }
            // Poll at a fraction of the budget so detection latency stays
            // proportionate, bounded for very small test budgets.
            let poll = (self.timeout / 4).clamp(Duration::from_millis(5), Duration::from_secs(1));
            let (next, _) = self
                .wakeup
                .wait_timeout(state, poll)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }
}

// --- the sweep engine -------------------------------------------------------

/// The definition of a campaign sweep: the (mechanism × N_RH × ±BreakHammer)
/// configuration matrix crossed with the mix suite and the workload seeds.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Experiment scale; `scale.seed` is overridden per entry of `seeds`.
    pub scale: Scale,
    /// Mechanisms swept.
    pub mechanisms: Vec<MechanismKind>,
    /// RowHammer thresholds swept.
    pub nrh_values: Vec<u64>,
    /// BreakHammer off/on arms (the `None` mechanism never gets the `true`
    /// arm: BreakHammer needs a mechanism to observe).
    pub breakhammer_options: Vec<bool>,
    /// `true` sweeps the attack suite (plus scenarios), `false` the benign
    /// suite.
    pub attack: bool,
    /// Workload-generation seeds; each seed regenerates the full mix suite.
    pub seeds: Vec<u64>,
    /// Test-only fault hook (the CLI reads `BH_TEST_FORCE_PANIC_MIX` into
    /// it): cells whose mix name contains this pattern panic instead of
    /// evaluating, exercising the panic-isolation path end to end. `None`
    /// in production.
    pub force_panic_mix: Option<String>,
    /// Test-only fault hook (the CLI reads `BH_TEST_FORCE_SPIN_MIX` into
    /// it): cells whose mix name contains this pattern evaluate under an
    /// injected livelock, so the watchdog classifies them `"livelock"`
    /// deterministically. Cell identity stays that of the base
    /// configuration. `None` in production.
    pub force_spin_mix: Option<String>,
}

impl CampaignSpec {
    /// A spec covering `scale`'s N_RH sweep for the given mechanisms, both
    /// BreakHammer arms, and `scale.seed` as the only seed.
    pub fn from_scale(scale: Scale, mechanisms: Vec<MechanismKind>, attack: bool) -> Self {
        CampaignSpec {
            nrh_values: scale.nrh_values.clone(),
            seeds: vec![scale.seed],
            breakhammer_options: vec![false, true],
            mechanisms,
            attack,
            scale,
            force_panic_mix: None,
            force_spin_mix: None,
        }
    }

    /// The configuration matrix at a given scale (which carries the seed).
    fn configs(&self, scale: &Scale) -> Vec<SystemConfig> {
        let mut configs = Vec::new();
        for &mechanism in &self.mechanisms {
            for &nrh in &self.nrh_values {
                for &bh in &self.breakhammer_options {
                    if mechanism == MechanismKind::None && bh {
                        continue;
                    }
                    configs.push(paper_config(mechanism, nrh, bh, scale));
                }
            }
        }
        configs
    }

    /// Runs the sweep, streaming each evaluated cell to `store` and skipping
    /// the cells in `completed` (the settled set on resume). `cell_limit`
    /// caps how many cells this invocation evaluates (used to exercise
    /// interruption deterministically in tests and CI; a real interruption —
    /// SIGKILL, OOM — leaves the same store state, minus any cell that was
    /// mid-evaluation).
    ///
    /// When `BH_CELL_TIMEOUT_SECS` is set, a wall-clock [`CellOverseer`]
    /// watches the in-flight cells and warns about any that exceed the
    /// budget — a last resort confined to this campaign layer; the
    /// deterministic in-simulator watchdog is the real defense.
    pub fn run(
        &self,
        store: &ResultStore,
        completed: &HashSet<String>,
        cell_limit: Option<usize>,
    ) -> SweepSummary {
        let overseer = CellOverseer::from_env();
        let mut summary = SweepSummary::default();
        let mut budget = cell_limit.unwrap_or(usize::MAX);
        for &seed in &self.seeds {
            let mut scale = self.scale.clone();
            scale.seed = seed;
            // Mixes and alone baselines depend on the seed, so each seed
            // gets its own campaign (and its own alone-IPC cache: same app
            // name, different trace).
            let mut campaign = Campaign::new(scale.clone());
            let mixes = campaign.sweep_mixes(self.attack);
            let configs = self.configs(&scale);
            let mut jobs: Vec<(usize, usize)> = Vec::new();
            let mut cells: Vec<String> = Vec::new();
            for (c, config) in configs.iter().enumerate() {
                let digest = config_digest(config);
                for (m, mix) in mixes.iter().enumerate() {
                    summary.total_cells += 1;
                    let id = format!("{digest}/{}/{seed}", mix.name);
                    if completed.contains(&id) {
                        summary.skipped_cells += 1;
                    } else if budget == 0 {
                        summary.deferred_cells += 1;
                    } else {
                        budget -= 1;
                        jobs.push((c, m));
                        cells.push(id);
                    }
                }
            }
            if jobs.is_empty() {
                continue;
            }
            let cache = campaign.warmed_alone_cache().clone();
            let on_claim = |i: usize| {
                if let Some(overseer) = &overseer {
                    overseer.begin(&cells[i]);
                }
            };
            let on_cell = |i: usize, outcome: Result<&RunRecord, &str>| {
                if let Some(overseer) = &overseer {
                    overseer.finish(&cells[i]);
                }
                match outcome {
                    Ok(record) => store.append(&record_line(&cells[i], seed, self.attack, record)),
                    Err(error) => store.append(&failed_line(&cells[i], seed, self.attack, error)),
                }
            };
            let hooks = EvalHooks {
                force_panic_mix: self.force_panic_mix.as_deref(),
                force_spin_mix: self.force_spin_mix.as_deref(),
                on_claim: &on_claim,
                on_record: &on_cell,
            };
            let results =
                evaluate_jobs(&configs, &mixes, &jobs, &cache, scale.worker_threads, &hooks);
            for result in &results {
                match result {
                    Ok(record) => {
                        summary.evaluated_cells += 1;
                        match record.termination {
                            TerminationReason::Livelock => summary.livelock_cells += 1,
                            TerminationReason::BudgetExceeded => summary.budget_cells += 1,
                            TerminationReason::Completed | TerminationReason::CycleCutoff => {}
                        }
                    }
                    Err(_) => summary.failed_cells += 1,
                }
            }
        }
        summary
    }
}

/// What a sweep invocation did with each cell of the grid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Cells in the full (configuration × mix × seed) grid.
    pub total_cells: usize,
    /// Cells already present in the store (resume skipped them).
    pub skipped_cells: usize,
    /// Cells evaluated and appended by this invocation.
    pub evaluated_cells: usize,
    /// Cells left unevaluated because the `cell_limit` budget ran out.
    pub deferred_cells: usize,
    /// Cells whose evaluation panicked: recorded as `"failed"` lines in the
    /// store (surfaced by `report`, retried by `resume`) instead of killing
    /// the sweep.
    pub failed_cells: usize,
    /// Evaluated cells (a subset of `evaluated_cells`) whose run the
    /// forward-progress watchdog classified as livelocked.
    pub livelock_cells: usize,
    /// Evaluated cells (a subset of `evaluated_cells`) whose run exceeded a
    /// deterministic per-run budget.
    pub budget_cells: usize,
}

impl SweepSummary {
    /// True when the store now covers the whole grid.
    pub fn complete(&self) -> bool {
        self.skipped_cells + self.evaluated_cells == self.total_cells
    }
}

// --- reporting --------------------------------------------------------------

/// Aggregates a result store into one row per (mechanism, N_RH, ±BreakHammer)
/// configuration: cell count, geomean weighted speedup, mean max slowdown,
/// mean energy, the identification rates, the attack-outcome summary
/// (raw/silent flips, attack-success rate) and the security-efficiency
/// headline — flips prevented per unit slowdown, both measured against the
/// no-defense (`NoDefense`, no BreakHammer) cells at the same N_RH.
///
/// Flips prevented is the drop in mean raw flips vs the baseline; unit
/// slowdown is the fractional weighted-speedup loss vs the baseline geomean.
/// The column reads `n/a` when the store has no baseline at that N_RH, and
/// `inf` when a mechanism prevents flips at no measurable slowdown.
///
/// Only healthy (`"ok"`) cells enter the aggregation: a livelocked or
/// budget-cut run's performance numbers describe a truncated run, not the
/// configuration — the CLI's `report` lists those cells separately.
pub fn report_table(records: &[CellRecord]) -> Table {
    let mut groups: HashMap<(String, u64, bool), Vec<&CellRecord>> = HashMap::new();
    for record in records.iter().filter(|r| r.is_ok()) {
        groups
            .entry((record.mechanism.clone(), record.nrh, record.breakhammer))
            .or_default()
            .push(record);
    }
    let no_defense = MechanismKind::None.to_string();
    let baselines: HashMap<u64, (f64, f64)> = groups
        .iter()
        .filter(|((mechanism, _, breakhammer), _)| mechanism == &no_defense && !breakhammer)
        .map(|((_, nrh, _), set)| {
            let speedups: Vec<f64> = set.iter().map(|r| r.weighted_speedup).collect();
            let mean_flips = set.iter().map(|r| r.flips_raw as f64).sum::<f64>() / set.len() as f64;
            (*nrh, (bh_stats::geometric_mean(&speedups), mean_flips))
        })
        .collect();
    let mut keys: Vec<(String, u64, bool)> = groups.keys().cloned().collect();
    keys.sort();
    let mut table = Table::new([
        "config",
        "nrh",
        "cells",
        "geomean_weighted_speedup",
        "mean_max_slowdown",
        "mean_energy_nj",
        "attacker_identified_rate",
        "benign_misidentified_rate",
        "bitflips",
        "flips_raw",
        "flips_silent",
        "attack_success_rate",
        "flips_prevented_per_slowdown",
    ]);
    for key in &keys {
        let set = &groups[key];
        let (mechanism, nrh, breakhammer) = key;
        let label = if *breakhammer { format!("{mechanism}+BH") } else { mechanism.clone() };
        let speedups: Vec<f64> = set.iter().map(|r| r.weighted_speedup).collect();
        let geomean_ws = bh_stats::geometric_mean(&speedups);
        let mean = |f: &dyn Fn(&CellRecord) -> f64| {
            set.iter().map(|r| f(r)).sum::<f64>() / set.len() as f64
        };
        let prevented_per_slowdown = match baselines.get(nrh) {
            None => "n/a".to_string(),
            Some((baseline_ws, baseline_flips)) => {
                let prevented = baseline_flips - mean(&|r| r.flips_raw as f64);
                let slowdown = (baseline_ws - geomean_ws) / baseline_ws.max(1e-12);
                if slowdown <= 1e-9 {
                    if prevented > 0.0 {
                        "inf".to_string()
                    } else {
                        fmt3(0.0)
                    }
                } else {
                    fmt3(prevented / slowdown)
                }
            }
        };
        table.push_row([
            label,
            nrh.to_string(),
            set.len().to_string(),
            fmt3(geomean_ws),
            fmt3(mean(&|r| r.max_slowdown)),
            format!("{:.0}", mean(&|r| r.energy_nj)),
            fmt3(mean(&|r| r.attacker_identified as u64 as f64)),
            fmt3(mean(&|r| r.benign_misidentified as u64 as f64)),
            set.iter().map(|r| r.bitflips).sum::<u64>().to_string(),
            set.iter().map(|r| r.flips_raw).sum::<u64>().to_string(),
            set.iter().map(|r| r.flips_silent).sum::<u64>().to_string(),
            fmt3(mean(&|r| r.attack_success as u64 as f64)),
            prevented_per_slowdown,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            mechanism: MechanismKind::Graphene,
            nrh: 64,
            breakhammer: true,
            mix_class: "HHHA".to_string(),
            mix_name: "HHHA-00".to_string(),
            weighted_speedup: 3.25,
            max_slowdown: 1.5,
            energy_nj: 123456.75,
            preventive_actions: 42,
            latency_ns: [10.5, 20.25, 99.0],
            attacker_identified: true,
            benign_misidentified: false,
            bitflips: 0,
            scenario: Some("fuzz-nbr".to_string()),
            max_victim_disturbance: 17,
            flips_raw: 9,
            flips_corrected: 4,
            flips_detected: 2,
            flips_silent: 3,
            attack_success: true,
            termination: TerminationReason::Completed,
            livelock: None,
        }
    }

    /// Tampers with a sealed line and re-seals it, so assertions about the
    /// *schema* checks are not masked by the crc check.
    fn tamper_resealed(line: &str, from: &str, to: &str) -> String {
        let idx = line.rfind(",\"crc\":\"").expect("line is sealed");
        let mut body = line[..idx].to_string();
        body.push('}');
        seal_line(body.replacen(from, to, 1))
    }

    #[test]
    fn record_lines_round_trip() {
        let record = sample_record();
        let line = record_line("deadbeef/HHHA-00/42", 42, true, &record);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.cell, "deadbeef/HHHA-00/42");
        assert_eq!(parsed.mechanism, "Graphene");
        assert_eq!(MechanismKind::parse(&parsed.mechanism), Some(MechanismKind::Graphene));
        assert_eq!(parsed.nrh, 64);
        assert!(parsed.breakhammer);
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.mix, "HHHA-00");
        assert_eq!(parsed.scenario.as_deref(), Some("fuzz-nbr"));
        assert!(parsed.attack);
        assert_eq!(parsed.weighted_speedup, 3.25);
        assert_eq!(parsed.latency_ns, [10.5, 20.25, 99.0]);
        assert_eq!(parsed.preventive_actions, 42);
        assert!(parsed.attacker_identified);
        assert!(!parsed.benign_misidentified);
        assert_eq!(parsed.max_victim_disturbance, 17);
        assert_eq!(parsed.flips_raw, 9);
        assert_eq!(parsed.flips_corrected, 4);
        assert_eq!(parsed.flips_detected, 2);
        assert_eq!(parsed.flips_silent, 3);
        assert!(parsed.attack_success);
        assert_eq!(parsed.status, "ok");
        assert!(parsed.is_ok());
        assert_eq!(parsed.termination, "completed");
        assert_eq!(parsed.livelock_report, None);

        let mut benign = record;
        benign.scenario = None;
        let line = record_line("deadbeef/HHHH-00/7", 7, false, &benign);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.scenario, None);
        assert!(!parsed.attack);
    }

    #[test]
    fn watchdog_verdicts_round_trip_with_their_status() {
        let mut record = sample_record();
        record.termination = TerminationReason::Livelock;
        record.livelock = Some("livelock at cycle 25000 (4 zero-progress epochs): …".to_string());
        let line = record_line("c/m/1", 1, true, &record);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.status, "livelock");
        assert!(!parsed.is_ok());
        assert_eq!(parsed.termination, "livelock");
        assert_eq!(parsed.livelock_report.as_deref(), record.livelock.as_deref());

        record.termination = TerminationReason::BudgetExceeded;
        record.livelock = None;
        let parsed = CellRecord::parse(&record_line("c/m/1", 1, true, &record)).expect("parses");
        assert_eq!(parsed.status, "budget");
        assert_eq!(parsed.termination, "budget");
        assert_eq!(parsed.livelock_report, None);

        record.termination = TerminationReason::CycleCutoff;
        let parsed = CellRecord::parse(&record_line("c/m/1", 1, true, &record)).expect("parses");
        assert_eq!(parsed.status, "ok", "a cycle cutoff is a healthy outcome");
        assert_eq!(parsed.termination, "cutoff");
    }

    #[test]
    fn termination_statuses_cover_the_taxonomy() {
        assert_eq!(termination_status(TerminationReason::Completed), "ok");
        assert_eq!(termination_status(TerminationReason::CycleCutoff), "ok");
        assert_eq!(termination_status(TerminationReason::Livelock), "livelock");
        assert_eq!(termination_status(TerminationReason::BudgetExceeded), "budget");
    }

    #[test]
    fn the_seal_rejects_torn_and_tampered_lines() {
        let line = record_line("a/m/1", 1, true, &sample_record());
        assert!(seal_intact(&line));
        // Any truncation breaks the seal (the crc tail is damaged or gone).
        for cut in [line.len() - 1, line.len() - 10, line.len() / 2, 10] {
            assert!(!seal_intact(&line[..cut]), "cut at {cut}");
        }
        // An in-place edit breaks it too, even though the JSON stays valid.
        let tampered = line.replacen("\"nrh\":64", "\"nrh\":65", 1);
        assert_ne!(tampered, line);
        assert!(!seal_intact(&tampered));
        assert_eq!(CellRecord::parse(&tampered), None);
        // A spliced hybrid of two sealed lines carries the tail's crc but
        // the head's content.
        let other = record_line("b/m/2", 2, true, &sample_record());
        let spliced = format!("{}{}", &line[..line.len() / 2], &other[other.len() / 2..]);
        assert!(!seal_intact(&spliced));
        assert_eq!(StoreEntry::parse(&spliced), None);
    }

    #[test]
    fn malformed_and_foreign_lines_are_rejected() {
        assert_eq!(CellRecord::parse(""), None);
        assert_eq!(CellRecord::parse("{\"schema\":3,\"cell\":\"x"), None, "truncated line");
        assert_eq!(CellRecord::parse("not json"), None);
        // A well-formed, correctly *sealed* line from a future schema is
        // rejected by the schema check itself, not just the crc.
        let line = tamper_resealed(
            &record_line("c/m/1", 1, true, &sample_record()),
            "\"schema\":3",
            "\"schema\":4",
        );
        assert!(seal_intact(&line), "the tampered line must pass the seal to reach the check");
        assert_eq!(CellRecord::parse(&line), None);
        // Pre-v3 lines (no seal) are rejected too: the engine reruns those
        // cells rather than guessing at the old schema.
        assert_eq!(CellRecord::parse("{\"schema\":1,\"cell\":\"a/m/1\"}"), None);
        assert_eq!(CellRecord::parse("{\"schema\":2,\"status\":\"ok\",\"cell\":\"a/m/1\"}"), None);
    }

    #[test]
    fn failed_lines_round_trip_and_never_count_as_completed() {
        let line = failed_line("a/m/1", 1, true, "panicked at 'boom'");
        assert_eq!(CellRecord::parse(&line), None, "a failed line is not a completed cell");
        let failed = FailedCell::parse(&line).expect("failed line parses");
        assert_eq!(failed.cell, "a/m/1");
        assert_eq!(failed.error, "panicked at 'boom'");
        match StoreEntry::parse(&line) {
            Some(StoreEntry::Failed(f)) => assert_eq!(f, failed),
            other => panic!("expected a failed entry, got {other:?}"),
        }
        let ok = record_line("a/m/1", 1, true, &sample_record());
        assert_eq!(FailedCell::parse(&ok), None, "a completed line is not a failure");
    }

    #[test]
    fn failed_cells_are_pending_until_a_later_completion() {
        let path = test_path("failed-cells");
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append(&failed_line("a/m/1", 1, true, "boom"));
            store.append(&failed_line("b/m/1", 1, true, "crash"));
            store.append(&failed_line("b/m/1", 1, true, "crash again"));
            // A later resume completed cell a; b is still pending.
            store.append(&record_line("a/m/1", 1, true, &sample_record()));
        }
        let pending = ResultStore::failed_cells(&path).expect("store loads");
        assert_eq!(pending.len(), 1, "{pending:?}");
        assert_eq!(pending[0].cell, "b/m/1");
        let completed = ResultStore::completed_cells(&path).expect("store loads");
        assert_eq!(completed, HashSet::from(["a/m/1".to_string()]));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn string_escapes_survive_the_round_trip() {
        let mut record = sample_record();
        record.mix_name = "m\"x\\w — tab\there\n".to_string();
        let line = record_line("c/m/1", 1, true, &record);
        let parsed = CellRecord::parse(&line).expect("line parses");
        assert_eq!(parsed.mix, record.mix_name);
    }

    #[test]
    fn config_digest_separates_configurations() {
        let scale = Scale::quick();
        let a = paper_config(MechanismKind::Graphene, 64, true, &scale);
        let b = paper_config(MechanismKind::Graphene, 128, true, &scale);
        assert_eq!(config_digest(&a), config_digest(&a), "digest is stable");
        assert_ne!(config_digest(&a), config_digest(&b));
        assert_eq!(cell_id(&a, "HHHA-00", 42), format!("{}/HHHA-00/42", config_digest(&a)));
    }

    #[test]
    fn store_create_refuses_data_and_append_requires_it() {
        let path = test_path("store-semantics");
        let _ = std::fs::remove_file(&path);
        assert!(ResultStore::append_to(&path).is_err(), "nothing to resume from");
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append("{\"schema\":1}");
        }
        assert!(ResultStore::create(&path).is_err(), "refuses to overwrite data");
        assert!(ResultStore::append_to(&path).is_ok());
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn completed_cells_skips_malformed_lines() {
        let path = test_path("completed-cells");
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append(&record_line("a/m/1", 1, true, &sample_record()));
            store.append("{\"schema\":1,\"cell\":\"trunc");
            store.append(&record_line("b/m/1", 1, true, &sample_record()));
        }
        let cells = ResultStore::completed_cells(&path).expect("store loads");
        assert_eq!(cells, HashSet::from(["a/m/1".to_string(), "b/m/1".to_string()]));
        assert_eq!(ResultStore::load(&path).expect("store loads").len(), 2);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn report_groups_by_configuration() {
        let line_a = record_line("a/m/1", 1, true, &sample_record());
        let mut other = sample_record();
        other.breakhammer = false;
        other.weighted_speedup = 1.0;
        let line_b = record_line("b/m/1", 1, true, &other);
        let records: Vec<CellRecord> =
            [line_a, line_b].iter().map(|l| CellRecord::parse(l).expect("parses")).collect();
        let table = report_table(&records);
        let csv = table.to_csv();
        assert!(csv.contains("Graphene+BH,64,1"), "{csv}");
        assert!(csv.contains("Graphene,64,1"), "{csv}");
        // No NoDefense baseline in the store: the efficiency column is n/a.
        assert!(csv.contains("n/a"), "{csv}");
    }

    #[test]
    fn report_computes_flips_prevented_per_unit_slowdown() {
        let make = |mechanism, breakhammer, ws: f64, flips_raw: u64| {
            let mut r = sample_record();
            r.mechanism = mechanism;
            r.breakhammer = breakhammer;
            r.weighted_speedup = ws;
            r.flips_raw = flips_raw;
            r.flips_silent = flips_raw;
            r.attack_success = flips_raw > 0;
            CellRecord::parse(&record_line("c/m/1", 1, true, &r)).expect("parses")
        };
        let records = vec![
            make(MechanismKind::None, false, 4.0, 100),
            make(MechanismKind::Graphene, false, 2.0, 10),
            make(MechanismKind::Graphene, true, 4.0, 10),
        ];
        let table = report_table(&records);
        let csv = table.to_csv();
        // Graphene: 90 flips prevented at (4-2)/4 = 0.5 unit slowdown → 180.
        assert!(csv.contains("180.000"), "{csv}");
        // Graphene+BH: same flips prevented at zero slowdown → inf.
        assert!(csv.lines().any(|l| l.starts_with("Graphene+BH") && l.ends_with("inf")), "{csv}");
        // The outcome columns surface raw/silent sums and the success rate.
        assert!(csv.contains("attack_success_rate"), "{csv}");
        assert!(csv.lines().any(|l| l.starts_with("NoDefense") && l.contains(",100,")), "{csv}");
    }

    #[test]
    fn settled_completed_and_verdict_sets_partition_by_status() {
        let path = test_path("settled-sets");
        let _ = std::fs::remove_file(&path);
        {
            let store = ResultStore::create(&path).expect("fresh store");
            store.append(&record_line("ok/m/1", 1, true, &sample_record()));
            let mut spun = sample_record();
            spun.termination = TerminationReason::Livelock;
            spun.livelock = Some("livelock at cycle 25000: …".to_string());
            store.append(&record_line("spin/m/1", 1, true, &spun));
            let mut cut = sample_record();
            cut.termination = TerminationReason::BudgetExceeded;
            store.append(&record_line("cut/m/1", 1, true, &cut));
            store.append(&failed_line("boom/m/1", 1, true, "panicked"));
        }
        let settled = ResultStore::settled_cells(&path).expect("store loads");
        assert_eq!(
            settled,
            HashSet::from(["ok/m/1".to_string(), "spin/m/1".to_string(), "cut/m/1".to_string()]),
            "every evaluated cell settles, whatever the verdict"
        );
        let completed = ResultStore::completed_cells(&path).expect("store loads");
        assert_eq!(completed, HashSet::from(["ok/m/1".to_string()]));
        let verdicts = ResultStore::verdict_cells(&path).expect("store loads");
        assert_eq!(verdicts.len(), 2);
        assert_eq!(verdicts[0].cell, "spin/m/1");
        assert_eq!(verdicts[0].status, "livelock");
        assert!(verdicts[0].livelock_report.is_some());
        assert_eq!(verdicts[1].cell, "cut/m/1");
        assert_eq!(verdicts[1].status, "budget");
        let pending = ResultStore::failed_cells(&path).expect("store loads");
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].cell, "boom/m/1");
        // Verdict cells carry truncated-run numbers; the report skips them.
        let records = ResultStore::load(&path).expect("store loads");
        assert_eq!(records.len(), 3);
        let table = report_table(&records);
        let csv = table.to_csv();
        assert!(csv.contains(",64,1,"), "only the ok cell is aggregated: {csv}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    // Wall clock is what the overseer measures; the test must read it too.
    #[allow(clippy::disallowed_methods)]
    fn overseer_flags_overdue_cells_once_and_forgets_finished_ones() {
        let overseer = CellOverseer::new(Duration::from_millis(20));
        overseer.begin("fast/m/1");
        overseer.finish("fast/m/1");
        overseer.begin("slow/m/1");
        let deadline = Instant::now() + Duration::from_secs(5);
        while overseer.overdue_cells().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(overseer.overdue_cells(), vec!["slow/m/1".to_string()]);
        // Finished before its budget ran out: never flagged, even later.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(overseer.overdue_cells(), vec!["slow/m/1".to_string()]);
    }

    /// A writer whose underlying device fails a configurable number of
    /// writes before recovering — the I/O-fault half of the chaos harness.
    struct ChaosWriter {
        sink: std::sync::Arc<Mutex<Vec<u8>>>,
        failures: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl Write for ChaosWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let failures = &self.failures;
            if failures.load(std::sync::atomic::Ordering::Relaxed) > 0 {
                failures.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                return Err(io::Error::other("injected device fault"));
            }
            self.sink.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn append_rides_out_transient_io_faults() {
        let sink = std::sync::Arc::new(Mutex::new(Vec::new()));
        let failures = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(2));
        let writer = ChaosWriter { sink: sink.clone(), failures: failures.clone() };
        let path = test_path("flaky-io");
        let store = ResultStore::with_writer(&path, Box::new(writer));
        let line = record_line("a/m/1", 1, true, &sample_record());
        store.append(&line);
        drop(store);
        assert_eq!(failures.load(std::sync::atomic::Ordering::Relaxed), 0);
        let written = String::from_utf8(sink.lock().unwrap().clone()).expect("utf8");
        assert_eq!(written, format!("{line}\n"), "the retried flush duplicated no bytes");
        assert!(CellRecord::parse(written.trim_end()).is_some());
    }

    #[test]
    fn append_panics_with_the_path_when_the_device_stays_dead() {
        let sink = std::sync::Arc::new(Mutex::new(Vec::new()));
        let failures = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX));
        let writer = ChaosWriter { sink, failures };
        let path = test_path("dead-io");
        let store = ResultStore::with_writer(&path, Box::new(writer));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.append(&record_line("a/m/1", 1, true, &sample_record()));
        }));
        let payload = result.expect_err("a dead device must not be silently swallowed");
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains(path.to_str().expect("utf8 path")),
            "the error names the store path: {message}"
        );
    }

    fn test_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bh-campaign-{tag}-{}.jsonl", std::process::id()))
    }
}
