//! Criterion micro-benchmark: the DRAM device model's command-issue engine
//! (timing-constraint checks and state updates for an ACT / RD / PRE row
//! cycle), which dominates the simulator's inner loop.

use bh_dram::{BankAddr, DramChannel, DramCommand, DramGeometry, DramLocation, TimingParams};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_row_cycle(c: &mut Criterion) {
    c.bench_function("dram_act_rd_pre_row_cycle", |b| {
        let mut channel = DramChannel::new(DramGeometry::paper_ddr5(), TimingParams::ddr5_4800());
        let bank = BankAddr { rank: 0, bank_group: 0, bank: 0 };
        let mut row = 0usize;
        b.iter(|| {
            row = (row + 1) % 1024;
            let act = DramCommand::activate(bank, row);
            let cycle = channel.earliest_issue(&act);
            channel.issue(&act, cycle).expect("activate");
            let rd = DramCommand::read(DramLocation { channel: 0, bank, row, column: 0 });
            let cycle = channel.earliest_issue(&rd);
            channel.issue(&rd, cycle).expect("read");
            let pre = DramCommand::precharge(bank);
            let cycle = channel.earliest_issue(&pre);
            channel.issue(&pre, cycle).expect("precharge");
            black_box(cycle)
        });
    });

    c.bench_function("dram_earliest_issue_query", |b| {
        let channel = DramChannel::new(DramGeometry::paper_ddr5(), TimingParams::ddr5_4800());
        let bank = BankAddr { rank: 1, bank_group: 3, bank: 1 };
        let act = DramCommand::activate(bank, 99);
        b.iter(|| black_box(channel.earliest_issue(black_box(&act))));
    });
}

criterion_group!(benches, bench_row_cycle);
criterion_main!(benches);
