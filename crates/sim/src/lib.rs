//! # bh-sim — the full-system simulator
//!
//! Ties every substrate of the BreakHammer reproduction together into the
//! simulated system of Table 1: trace-driven 4.2 GHz cores (`bh-cpu`), the
//! shared LLC with per-thread MSHR quotas, the FR-FCFS+Cap memory controller
//! (`bh-mem`), the DDR5 channel with RowHammer victim tracking (`bh-dram`),
//! one of the eight mitigation mechanisms (`bh-mitigation`) and, optionally,
//! BreakHammer itself (`bh-core`).
//!
//! * [`SystemConfig`] — the composite configuration (Table 1 / Table 2);
//! * [`System`] — the wired system; [`System::run`] produces a
//!   [`SimulationResult`];
//! * [`Evaluator`] — runs workload mixes and computes the paper's metrics
//!   (weighted speedup of benign applications, maximum slowdown, DRAM energy,
//!   preventive-action counts).
//!
//! ## Example
//!
//! ```no_run
//! use bh_mitigation::MechanismKind;
//! use bh_sim::{Evaluator, SystemConfig};
//! use bh_workloads::{MixBuilder, MixClass, TraceGenerator};
//!
//! // Graphene + BreakHammer at N_RH = 1K on the paper's quad-core system.
//! let mut config = SystemConfig::paper_table1(MechanismKind::Graphene, 1024, true);
//! config.instructions_per_core = 100_000;
//!
//! let builder = MixBuilder::new(TraceGenerator::paper_default());
//! let mix = builder.build(MixClass::attack_classes()[0], 0, 42);
//!
//! let mut evaluator = Evaluator::new(config);
//! let evaluation = evaluator.evaluate(&mix);
//! println!("weighted speedup of benign apps: {:.3}", evaluation.weighted_speedup);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod result;
pub mod runner;
pub mod system;
pub mod watchdog;

pub use config::{
    ChannelStepping, ChaosConfig, FrontEndKind, SchedulerKind, SystemConfig, WatchdogConfig,
};
pub use result::{
    AttackOutcome, ChannelBreakdown, ChannelLaneState, CoreLaneState, CorePerformance,
    LivelockReport, SimulationResult, TerminationReason, VictimReport,
};
pub use runner::{evaluate_under_configs, Evaluator, MixEvaluation};
pub use system::System;
