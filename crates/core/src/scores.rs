//! Time-interleaved RowHammer-preventive score counters (Fig. 4 of the paper).
//!
//! BreakHammer keeps **two** sets of per-thread score counters. Both sets are
//! trained (incremented) on every preventive action, but only the *active* set
//! answers suspect-identification queries. At the end of each throttling
//! window the active set is reset and the other set — which has been training
//! for a full window already — becomes active. This gives continuous
//! monitoring without ever querying cold counters.

use bh_dram::ThreadId;
use serde::{Deserialize, Serialize};

/// Two time-interleaved sets of per-thread score counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterleavedScores {
    sets: [Vec<f64>; 2],
    active: usize,
}

impl InterleavedScores {
    /// Creates counters for `num_threads` hardware threads, all zero.
    ///
    /// # Panics
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one hardware thread");
        InterleavedScores { sets: [vec![0.0; num_threads], vec![0.0; num_threads]], active: 0 }
    }

    /// Number of tracked threads.
    pub fn num_threads(&self) -> usize {
        self.sets[0].len()
    }

    /// Adds `amount` to `thread`'s score in **both** sets (both sets train).
    ///
    /// # Panics
    /// Panics if `thread` is out of range.
    pub fn add(&mut self, thread: ThreadId, amount: f64) {
        let idx = thread.index();
        self.sets[0][idx] += amount;
        self.sets[1][idx] += amount;
    }

    /// The active-set score of `thread` (the value used for suspect
    /// identification).
    pub fn score(&self, thread: ThreadId) -> f64 {
        self.sets[self.active][thread.index()]
    }

    /// The active-set scores of all threads.
    pub fn active_scores(&self) -> &[f64] {
        &self.sets[self.active]
    }

    /// The training-only (inactive) set scores of all threads.
    pub fn inactive_scores(&self) -> &[f64] {
        &self.sets[1 - self.active]
    }

    /// Mean of the active-set scores.
    pub fn mean(&self) -> f64 {
        let s = &self.sets[self.active];
        s.iter().sum::<f64>() / s.len() as f64
    }

    /// Index of the currently active set (0 or 1), exposed for statistics.
    pub fn active_set_index(&self) -> usize {
        self.active
    }

    /// End-of-window rotation: resets the active set and makes the other set
    /// (already trained during the elapsed window) the new active set.
    pub fn rotate(&mut self) {
        for v in &mut self.sets[self.active] {
            *v = 0.0;
        }
        self.active = 1 - self.active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sets_train_but_only_active_answers() {
        let mut s = InterleavedScores::new(2);
        s.add(ThreadId(0), 3.0);
        s.add(ThreadId(1), 1.0);
        assert_eq!(s.score(ThreadId(0)), 3.0);
        assert_eq!(s.inactive_scores(), &[3.0, 1.0]);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn rotation_keeps_trained_values_available() {
        let mut s = InterleavedScores::new(2);
        s.add(ThreadId(0), 4.0);
        let before_active = s.active_set_index();
        s.rotate();
        assert_ne!(s.active_set_index(), before_active);
        // The new active set retained the training from the previous window…
        assert_eq!(s.score(ThreadId(0)), 4.0);
        // …while the reset set starts from zero and keeps training.
        assert_eq!(s.inactive_scores(), &[0.0, 0.0]);
        s.add(ThreadId(0), 1.0);
        assert_eq!(s.score(ThreadId(0)), 5.0);
        s.rotate();
        // After the second rotation only the post-reset training remains.
        assert_eq!(s.score(ThreadId(0)), 1.0);
    }

    #[test]
    fn continuous_monitoring_across_windows() {
        // A thread that keeps misbehaving never sees its visible score drop to
        // zero at a window boundary (the property Fig. 4 illustrates).
        let mut s = InterleavedScores::new(1);
        let mut min_visible_after_boundary = f64::MAX;
        for _window in 0..5 {
            for _ in 0..10 {
                s.add(ThreadId(0), 1.0);
            }
            s.rotate();
            min_visible_after_boundary = min_visible_after_boundary.min(s.score(ThreadId(0)));
        }
        assert!(min_visible_after_boundary >= 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one hardware thread")]
    fn zero_threads_rejected() {
        let _ = InterleavedScores::new(0);
    }

    #[test]
    fn num_threads_reported() {
        assert_eq!(InterleavedScores::new(4).num_threads(), 4);
    }
}
