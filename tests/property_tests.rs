//! Property-based tests (proptest) on the core data structures and
//! invariants: address-mapping bijectivity, trace serialisation, metric
//! bounds, Misra–Gries guarantees and BreakHammer score conservation.

// The proptest reference models use HashMap as ground truth on purpose:
// they must be an independent implementation of the flat tables.
#![allow(clippy::disallowed_types)]

use breakhammer_suite::breakhammer::{BreakHammer, BreakHammerConfig};
use breakhammer_suite::cpu::{Trace, TraceEntry};
use breakhammer_suite::dram::{BankAddr, DramGeometry, DramLocation, PhysAddr, ThreadId};
use breakhammer_suite::mem::AddressMapping;
use breakhammer_suite::mitigation::{MisraGries, ScoreAttribution};
use breakhammer_suite::stats::{max_slowdown, percentile, weighted_speedup, AppPerf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MOP address mapping is a bijection between line addresses and DRAM
    /// coordinates: encode(decode(addr)) preserves the line.
    #[test]
    fn mop_mapping_roundtrips_any_line(line in 0u64..1_000_000_000) {
        let geometry = DramGeometry::paper_ddr5();
        let mapping = AddressMapping::paper_default();
        let addr = PhysAddr(line * 64);
        let loc = mapping.decode(addr, &geometry);
        let back = mapping.encode(&loc, &geometry);
        // The mapping wraps around the channel capacity, so compare decoded
        // coordinates rather than raw addresses.
        prop_assert_eq!(mapping.decode(back, &geometry), loc);
    }

    /// Encoding any valid DRAM location and decoding it returns the location.
    #[test]
    fn mop_mapping_encodes_all_coordinates(
        rank in 0usize..2,
        bank_group in 0usize..8,
        bank in 0usize..2,
        row in 0usize..65_536,
        column in 0usize..128,
    ) {
        let geometry = DramGeometry::paper_ddr5();
        let mapping = AddressMapping::paper_default();
        let loc = DramLocation {
            channel: 0,
            bank: BankAddr { rank, bank_group, bank },
            row,
            column,
        };
        let addr = mapping.encode(&loc, &geometry);
        prop_assert_eq!(mapping.decode(addr, &geometry), loc);
    }

    /// Trace binary serialisation round-trips arbitrary traces.
    #[test]
    fn trace_serialisation_roundtrips(
        entries in proptest::collection::vec(
            (0u32..200, 0u64..1u64 << 40, any::<bool>(), any::<bool>()),
            1..200,
        )
    ) {
        let trace = Trace::new(
            entries
                .iter()
                .map(|(bubbles, addr, is_write, uncached)| TraceEntry {
                    bubbles: *bubbles,
                    addr: PhysAddr(*addr),
                    is_write: *is_write,
                    uncached: *uncached,
                })
                .collect(),
        );
        let back = Trace::from_bytes(trace.to_bytes()).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Weighted speedup of an n-application mix is bounded by n, and the
    /// maximum slowdown is at least the slowdown of every application.
    #[test]
    fn metric_bounds_hold(
        perfs in proptest::collection::vec((0.05f64..4.0, 0.05f64..4.0), 1..8)
    ) {
        let apps: Vec<AppPerf> = perfs
            .iter()
            .map(|(alone, shared)| AppPerf::new(*alone, (*shared).min(*alone)))
            .collect();
        let ws = weighted_speedup(&apps);
        prop_assert!(ws > 0.0);
        prop_assert!(ws <= apps.len() as f64 + 1e-9);
        let unfairness = max_slowdown(&apps);
        prop_assert!(unfairness >= 1.0 - 1e-9);
    }

    /// Percentiles are monotonic in p and bounded by the sample extremes.
    #[test]
    fn percentiles_are_monotonic_and_bounded(
        samples in proptest::collection::vec(0.0f64..1e6, 1..256),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&samples, lo);
        let v_hi = percentile(&samples, hi);
        prop_assert!(v_lo <= v_hi + 1e-9);
        let min = samples.iter().cloned().fold(f64::MAX, f64::min);
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
    }

    /// Misra–Gries never underestimates a row's count by more than the
    /// spillover (the guarantee Graphene's security argument relies on).
    #[test]
    fn misra_gries_error_bound(
        accesses in proptest::collection::vec(0usize..32, 1..2000),
        capacity in 1usize..16,
    ) {
        let mut mg = MisraGries::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for row in &accesses {
            mg.record(*row);
            *truth.entry(*row).or_insert(0u64) += 1;
        }
        for (row, count) in truth {
            prop_assert!(mg.estimate(row) + mg.spillover() >= count);
        }
    }

    /// One preventive action always distributes exactly one unit of score
    /// across the threads that contributed activations (score conservation).
    #[test]
    fn breakhammer_score_is_conserved(
        activations in proptest::collection::vec(0u64..50, 4),
    ) {
        prop_assume!(activations.iter().sum::<u64>() > 0);
        let timing = breakhammer_suite::dram::TimingParams::ddr5_4800();
        let config = BreakHammerConfig::paper_table2(&timing, 4, 64);
        let mut bh = BreakHammer::new(config, ScoreAttribution::ProportionalToActivations);
        for (thread, count) in activations.iter().enumerate() {
            for _ in 0..*count {
                bh.on_activation(ThreadId(thread), 10);
            }
        }
        bh.on_preventive_action(20);
        let total: f64 = bh.scores().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
