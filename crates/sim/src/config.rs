//! Full-system configuration (Table 1 + Table 2 of the paper).

use bh_core::BreakHammerConfig;
use bh_cpu::{CacheConfig, CoreConfig};
use bh_dram::{DeviceConfig, DramGeometry, EnergyParams, FaultConfig, TimingParams};
use bh_mem::MemControllerConfig;
use bh_mitigation::MechanismKind;
use serde::{Deserialize, Serialize};

/// Which kernel drives the simulation clock in [`crate::System::run`].
///
/// Both kernels produce bit-identical [`crate::SimulationResult`]s; the
/// per-cycle kernel is retained as the executable reference model for
/// differential testing of the event-driven one (see
/// `tests/scheduler_differential.rs` at the workspace root).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Reference kernel: tick every layer at every DRAM command-clock cycle.
    PerCycle,
    /// Event-driven kernel: jump the clock to the next cycle at which any
    /// layer can make progress (a queued DRAM command becoming issuable, a
    /// refresh deadline, an LLC fill completing, a core's window head
    /// becoming ready, a BreakHammer window edge), replaying the skipped
    /// cycles' counter increments in bulk.
    #[default]
    EventDriven,
}

/// Which CPU front-end replays the instruction traces in
/// [`crate::System::run`].
///
/// Both front-ends produce bit-identical [`crate::SimulationResult`]s; the
/// per-object model is retained as the executable reference for differential
/// testing of the data-oriented engine (see
/// `tests/front_end_differential.rs` at the workspace root and the
/// differential proptest in `bh_cpu::engine`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrontEndKind {
    /// Reference model: one heap-allocated `Core` object per hardware
    /// thread, ticked through its own `VecDeque` instruction window.
    Legacy,
    /// Data-oriented engine (`bh_cpu::CoreEngine`): every core's hot replay
    /// state in flat structure-of-arrays vectors, stepped in one pass per
    /// event epoch with the cores' LLC accesses drained in core-index order.
    #[default]
    Engine,
}

/// How the event-driven kernel steps the per-channel memory controllers in
/// [`crate::System::run`].
///
/// Both variants produce bit-identical [`crate::SimulationResult`]s; serial
/// stepping is retained as the executable reference model (the golden-digest
/// matrices and `tests/parallel_differential.rs` at the workspace root pin
/// the equivalence). The per-cycle kernel ignores this knob — it has no
/// cross-channel dead time to batch.
///
/// Parallel stepping batches the controllers in *epochs*: after a step at
/// cycle `a`, the kernel derives a horizon `h` before which no cross-channel
/// interaction can occur (no core wakes, no LLC fill completes, no
/// BreakHammer window rotates, no quota is pending, and no in-epoch read can
/// complete — `h ≤ a + 1 + read latency`). Each channel then advances
/// through its own event chain to `h` independently (on the worker pool when
/// the epoch is wide enough, inline otherwise), recording its
/// BreakHammer-observable events; a single-threaded merge replays those
/// events into the shared observer in (cycle, channel-index) order — the
/// exact order the serial schedule produces — before the next full step at
/// `h`. Worker count and dispatch heuristics can therefore never change the
/// simulated behaviour, only the wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelStepping {
    /// Reference: every channel controller is ticked at every stepped cycle.
    #[default]
    Serial,
    /// Epoch-barrier stepping: channels advance to the merged next-event
    /// horizon independently, then cross-channel effects are merged in
    /// channel-index order.
    Parallel,
}

/// Forward-progress watchdog: detects livelocked runs deterministically, in
/// simulated time only (no wall clock anywhere in the sim crates).
///
/// The watchdog samples global progress — instructions retired plus DRAM
/// demand requests served — at fixed DRAM-cycle epoch boundaries. Every
/// kernel (per-cycle, event-driven serial, event-driven parallel) steps at
/// each boundary (event horizons are clamped there; undershooting a horizon
/// is always behaviour-neutral), so the samples, the verdict and the
/// [`LivelockReport`](crate::LivelockReport) are bit-identical across
/// kernels, stepping modes and front-ends.
///
/// [`WatchdogConfig::stall_epochs`] consecutive epochs with zero progress —
/// or the same number of consecutive identical state digests (queue depths,
/// lane states, suspect sets) — classifies the run as
/// [`TerminationReason::Livelock`](crate::TerminationReason::Livelock).
/// Optional deterministic budgets (max epochs, max preventive actions) yield
/// [`TerminationReason::BudgetExceeded`](crate::TerminationReason::BudgetExceeded)
/// instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch. When off, runs keep the historical behaviour (burn to
    /// `max_dram_cycles` on no progress).
    pub enabled: bool,
    /// Epoch length in DRAM cycles between progress samples. `0` (the
    /// default) derives a length from the system: large enough that a
    /// quota-starved thread waiting out a full BreakHammer window is never
    /// misclassified, small enough to fire well before the cycle cutoff.
    pub epoch_cycles: u64,
    /// Consecutive zero-progress (or state-fixpoint) epochs that classify
    /// the run as livelocked.
    pub stall_epochs: u32,
    /// Deterministic budget: maximum watchdog epochs before the run is cut
    /// with `BudgetExceeded`. `0` = unlimited.
    pub max_epochs: u64,
    /// Deterministic budget: maximum preventive actions before the run is
    /// cut with `BudgetExceeded` (checked at epoch boundaries). `0` =
    /// unlimited.
    pub max_preventive_actions: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            epoch_cycles: 0,
            stall_epochs: 8,
            max_epochs: 0,
            max_preventive_actions: 0,
        }
    }
}

impl WatchdogConfig {
    /// Validates the watchdog configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.stall_epochs == 0 {
            return Err("the watchdog needs at least one stall epoch (stall_epochs > 0)".into());
        }
        Ok(())
    }
}

/// Deterministic chaos injection for robustness tests: simulated faults that
/// force pathological behaviour without touching any non-deterministic
/// machinery. All fields default to "off", leaving behaviour (and the golden
/// digests) bit-for-bit unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// From this DRAM cycle on, completed memory responses are dropped
    /// instead of filling the LLC: every core eventually hard-stalls behind
    /// a miss that never returns, and the system stops making progress —
    /// a deterministic, kernel-invariant livelock used to exercise the
    /// forward-progress watchdog end to end.
    pub drop_fills_after: Option<u64>,
}

/// Configuration of one simulated system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores / hardware threads (4 in Table 1).
    pub cores: usize,
    /// Core clock frequency in GHz (4.2 in Table 1).
    pub cpu_freq_ghz: f64,
    /// Core microarchitecture parameters.
    pub core: CoreConfig,
    /// Shared LLC parameters.
    pub cache: CacheConfig,
    /// Memory-controller parameters.
    pub memctrl: MemControllerConfig,
    /// DRAM organization.
    pub geometry: DramGeometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// DRAM energy parameters.
    pub energy: EnergyParams,
    /// Device-model knobs (RFM servicing, blast radius).
    pub device: DeviceConfig,
    /// RowHammer threshold the mitigation must protect against.
    pub nrh: u64,
    /// The RowHammer mitigation mechanism in use.
    pub mechanism: MechanismKind,
    /// Whether BreakHammer is attached to the mechanism.
    pub breakhammer: bool,
    /// Optional override of the BreakHammer configuration; when `None` the
    /// Table 2 defaults (scaled to this system) are used.
    pub breakhammer_config: Option<BreakHammerConfig>,
    /// Instructions each tracked core must retire before the simulation ends.
    pub instructions_per_core: u64,
    /// Hard limit on simulated DRAM cycles (safety net against pathological
    /// configurations).
    pub max_dram_cycles: u64,
    /// Seed for the probabilistic mechanisms (PARA).
    pub seed: u64,
    /// The simulation kernel driving the clock (results are identical for
    /// both; see [`SchedulerKind`]).
    #[serde(default)]
    pub scheduler: SchedulerKind,
    /// The CPU front-end replaying the traces (results are identical for
    /// both; see [`FrontEndKind`]).
    #[serde(default)]
    pub front_end: FrontEndKind,
    /// How the event-driven kernel steps the per-channel memory controllers
    /// (results are identical for both; see [`ChannelStepping`]).
    #[serde(default)]
    pub stepping: ChannelStepping,
    /// Fault-injection model: how disturbance-threshold crossings turn into
    /// bit-flips, and the ECC scheme classifying them. The default (hard
    /// threshold, no ECC) is bit-identical to the pre-fault-model simulator.
    #[serde(default)]
    pub fault: FaultConfig,
    /// Forward-progress watchdog: livelock detection and deterministic run
    /// budgets (see [`WatchdogConfig`]). Never fires on healthy runs, so the
    /// default-enabled watchdog leaves all results bit-identical.
    #[serde(default)]
    pub watchdog: WatchdogConfig,
    /// Deterministic chaos injection for robustness tests (all off by
    /// default; see [`ChaosConfig`]).
    #[serde(default)]
    pub chaos: ChaosConfig,
}

impl SystemConfig {
    /// Number of memory channels in the simulated system (1 in Table 1).
    ///
    /// The geometry's channel count is the single source of truth; this is a
    /// convenience accessor paired with [`SystemConfig::with_channels`].
    pub fn channels(&self) -> usize {
        self.geometry.channels
    }

    /// The same configuration sharded over `channels` memory channels: one
    /// memory controller and one mitigation-mechanism instance per channel,
    /// with requests distributed by the address mapping's channel-interleave
    /// policy (`memctrl.mapping.interleave`) and one shared BreakHammer
    /// observing all channels.
    ///
    /// # Panics
    /// Panics if `channels` is zero.
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.geometry = self.geometry.with_channels(channels);
        self
    }

    /// The paper's simulated system (Table 1): 4 cores at 4.2 GHz, 8 MiB LLC,
    /// single-channel dual-rank DDR5 with 32 banks, FR-FCFS+Cap(4), MOP
    /// mapping — protected by `mechanism` at threshold `nrh`.
    pub fn paper_table1(mechanism: MechanismKind, nrh: u64, breakhammer: bool) -> Self {
        SystemConfig {
            cores: 4,
            cpu_freq_ghz: 4.2,
            core: CoreConfig::paper_table1(),
            cache: CacheConfig::paper_table1(),
            memctrl: MemControllerConfig::paper_table1(4),
            geometry: DramGeometry::paper_ddr5(),
            timing: TimingParams::ddr5_4800(),
            energy: EnergyParams::ddr5(),
            device: DeviceConfig::default(),
            nrh,
            mechanism,
            breakhammer,
            breakhammer_config: None,
            instructions_per_core: 1_000_000,
            max_dram_cycles: 2_000_000_000,
            seed: 0,
            scheduler: SchedulerKind::default(),
            front_end: FrontEndKind::default(),
            stepping: ChannelStepping::default(),
            fault: FaultConfig::default(),
            watchdog: WatchdogConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }

    /// A scaled-down configuration for unit and integration tests: tiny DRAM
    /// geometry, shortened timings, a small LLC and a small instruction
    /// budget, so a full-system run completes in milliseconds.
    pub fn fast_test(mechanism: MechanismKind, nrh: u64, breakhammer: bool) -> Self {
        let mut cache = CacheConfig::tiny_test();
        cache.capacity_bytes = 64 * 1024;
        cache.ways = 4;
        cache.mshrs = 16;
        let mut memctrl = MemControllerConfig::paper_table1(4);
        memctrl.read_queue_capacity = 32;
        memctrl.write_queue_capacity = 32;
        memctrl.write_drain_high = 24;
        memctrl.write_drain_low = 8;
        SystemConfig {
            cores: 4,
            cpu_freq_ghz: 4.2,
            core: CoreConfig::paper_table1(),
            cache,
            memctrl,
            geometry: DramGeometry::tiny(),
            timing: TimingParams::fast_test(),
            energy: EnergyParams::ddr5(),
            device: DeviceConfig::default(),
            nrh,
            mechanism,
            breakhammer,
            breakhammer_config: None,
            instructions_per_core: 30_000,
            max_dram_cycles: 5_000_000,
            seed: 0,
            scheduler: SchedulerKind::default(),
            front_end: FrontEndKind::default(),
            stepping: ChannelStepping::default(),
            fault: FaultConfig::default(),
            watchdog: WatchdogConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }

    /// The effective BreakHammer configuration for this system (the Table 2
    /// defaults, scaled to this system, unless overridden).
    ///
    /// Derived at call time from the *current* field values, so mutating
    /// `cores`, `cache.mshrs` or `timing` after construction is reflected
    /// here.
    pub fn effective_breakhammer_config(&self) -> BreakHammerConfig {
        self.breakhammer_config.clone().unwrap_or_else(|| {
            let mut config =
                BreakHammerConfig::paper_table2(&self.timing, self.cores, self.cache.mshrs);
            // Table 2's 64 ms window is ~153 M DRAM cycles. In scaled-down
            // configurations (e.g. `fast_test`, capped at 5 M cycles) not a
            // single window would complete, so suspect flags would never
            // clear and a throttled thread could never earn its quota back.
            // Cap the window so every run spans at least ~10 windows,
            // preserving the identify/throttle/restore dynamics; at the
            // paper's scale (2 G-cycle cap) the 64 ms window is unaffected.
            config.window_cycles = config.window_cycles.min((self.max_dram_cycles / 10).max(1));
            config
        })
    }

    /// CPU cycles elapsed per DRAM command-clock cycle.
    pub fn cpu_cycles_per_dram_cycle(&self) -> f64 {
        self.cpu_freq_ghz * 1000.0 / self.timing.clock_mhz
    }

    /// Validates the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("the system needs at least one core".to_string());
        }
        if self.cpu_freq_ghz <= 0.0 || self.cpu_freq_ghz.is_nan() {
            return Err("the CPU frequency must be positive".to_string());
        }
        if self.instructions_per_core == 0 {
            return Err("the per-core instruction budget must be positive".to_string());
        }
        if self.memctrl.num_threads != self.cores {
            return Err(
                "the memory controller must be configured for the same thread count".to_string()
            );
        }
        if self.geometry.channels == 0 {
            return Err("the memory system needs at least one channel".to_string());
        }
        self.cache.validate()?;
        self.memctrl.validate()?;
        self.timing.validate()?;
        self.fault.validate()?;
        self.watchdog.validate()?;
        self.effective_breakhammer_config().validate()?;
        Ok(())
    }

    /// A one-line summary used in experiment output.
    pub fn summary(&self) -> String {
        format!(
            "{} cores @ {:.1} GHz, {} N_RH={} {}",
            self.cores,
            self.cpu_freq_ghz,
            self.mechanism,
            self.nrh,
            if self.breakhammer { "+BreakHammer" } else { "(no BreakHammer)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_table1() {
        let c = SystemConfig::paper_table1(MechanismKind::Graphene, 1024, true);
        assert_eq!(c.cores, 4);
        assert!((c.cpu_freq_ghz - 4.2).abs() < 1e-9);
        assert_eq!(c.cache.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.cache.ways, 8);
        assert_eq!(c.geometry.banks_per_channel(), 32);
        assert_eq!(c.memctrl.frfcfs_cap, 4);
        assert_eq!(c.validate(), Ok(()));
        // ~1.75 CPU cycles per DRAM command cycle (4.2 GHz vs 2.4 GHz).
        assert!((c.cpu_cycles_per_dram_cycle() - 1.75).abs() < 1e-9);
        let bh = c.effective_breakhammer_config();
        assert_eq!(bh.threat_threshold, 32.0);
        assert_eq!(bh.outlier_threshold, 0.65);
        assert!(c.summary().contains("Graphene"));
        assert!(c.summary().contains("+BreakHammer"));
    }

    #[test]
    fn fast_test_configuration_is_valid_for_all_mechanisms() {
        for kind in [
            MechanismKind::None,
            MechanismKind::Para,
            MechanismKind::Graphene,
            MechanismKind::Hydra,
            MechanismKind::Twice,
            MechanismKind::Aqua,
            MechanismKind::Rega,
            MechanismKind::Rfm,
            MechanismKind::Prac,
            MechanismKind::BlockHammer,
        ] {
            let c = SystemConfig::fast_test(kind, 256, true);
            assert_eq!(c.validate(), Ok(()), "{kind}");
        }
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let mut c = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        c.instructions_per_core = 0;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        c.cores = 2; // memctrl still configured for 4 threads
        assert!(c.validate().is_err());
    }
}
