//! Composable-attacker scenario matrix: every catalog scenario (pattern ×
//! placement) swept under Graphene with and without BreakHammer, reporting
//! the benign weighted speedup, the mitigation's preventive-action count,
//! whether the attacker thread was throttled, and the worst per-victim
//! disturbance the scenario achieved.
//!
//! `BH_SCENARIOS` selects a subset (comma-separated names); when unset this
//! binary defaults to the full catalog.

use bh_bench::{maybe_print_config, mean_of, print_results, select, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};
use bh_workloads::scenario_catalog;

fn main() {
    let mut scale = Scale::from_env();
    if scale.scenarios.is_empty() {
        scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
    }
    maybe_print_config(&scale);
    let scenarios = scale.scenarios.clone();
    let nrh = *scale.nrh_values.iter().min().expect("non-empty N_RH sweep");
    let mut campaign = Campaign::new(scale);

    let mechanism = MechanismKind::Graphene;
    let records = campaign.run_matrix(&[mechanism], &[nrh], &[false, true], /*attack=*/ true);

    let mut table = Table::new([
        "scenario",
        "config",
        "weighted_speedup",
        "preventive_actions",
        "attacker_throttled",
        "max_victim_disturbance",
    ]);
    for scenario in &scenarios {
        for bh in [false, true] {
            let sel: Vec<_> = select(&records, mechanism, nrh, bh)
                .into_iter()
                .filter(|r| r.scenario.as_deref() == Some(scenario.as_str()))
                .collect();
            if sel.is_empty() {
                continue;
            }
            let speedup = mean_of(&sel, |r| r.weighted_speedup);
            let actions = mean_of(&sel, |r| r.preventive_actions as f64);
            let identified = sel.iter().filter(|r| r.attacker_identified).count();
            let disturbance = sel.iter().map(|r| r.max_victim_disturbance).max().unwrap_or(0);
            let label = if bh { format!("{mechanism}+BH") } else { mechanism.to_string() };
            table.push_row([
                scenario.clone(),
                label,
                fmt3(speedup),
                format!("{actions:.0}"),
                format!("{identified}/{}", sel.len()),
                disturbance.to_string(),
            ]);
        }
    }
    print_results(
        &format!("Composable-attacker scenarios under {mechanism} at N_RH = {nrh} (pattern × placement catalog)"),
        &table,
    );
}
