//! # bh-mitigation — RowHammer mitigation mechanisms
//!
//! From-scratch implementations of the eight state-of-the-art RowHammer
//! mitigation mechanisms the BreakHammer paper pairs its throttling support
//! with, plus the BlockHammer comparison point and a no-defense baseline:
//!
//! | Mechanism | Preventive action | Module |
//! |---|---|---|
//! | PARA | probabilistic victim refresh | [`para`] |
//! | Graphene | Misra–Gries tracking + victim refresh | [`graphene`] |
//! | Hydra | hybrid group/per-row tracking (table in DRAM) + victim refresh | [`hydra`] |
//! | TWiCe | pruned time-window counters + victim refresh | [`twice`] |
//! | AQUA | aggressor row migration to a quarantine area | [`aqua`] |
//! | REGA | in-DRAM refresh-generating activations (timing inflation) | [`rega`] |
//! | RFM | periodic refresh-management commands | [`rfm`] |
//! | PRAC | per-row activation counting + back-off RFMs | [`prac`] |
//! | BlockHammer | row blacklisting + access delay (comparison point) | [`blockhammer`] |
//!
//! Every mechanism implements the [`TriggerMechanism`] trait: the memory
//! controller reports each row activation (annotated with the hardware thread
//! that caused it), and the mechanism pushes the preventive actions to
//! perform into a caller-owned, reusable [`ActionSink`] — the activation path
//! is the simulator's hot loop, so it is allocation-free in the steady state.
//! BreakHammer (in `bh-core`) observes those actions and attributes
//! per-thread scores according to the mechanism's [`ScoreAttribution`].
//!
//! ## Example
//!
//! ```
//! use bh_mitigation::{ActionSink, ActionView, ActivationEvent, MechanismKind};
//! use bh_dram::{BankAddr, DramGeometry, RowAddr, ThreadId, TimingParams};
//!
//! let geometry = DramGeometry::paper_ddr5();
//! let timing = TimingParams::ddr5_4800();
//! let mut graphene = MechanismKind::Graphene.build(&geometry, &timing, 1024, 0);
//!
//! let row = RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row: 42 };
//! let mut sink = ActionSink::default();
//! let mut preventive_refreshes = 0;
//! for cycle in 0..10_000u64 {
//!     let event = ActivationEvent { row, thread: ThreadId(0), cycle };
//!     sink.clear();
//!     graphene.on_activation(&event, &mut sink);
//!     for action in sink.iter() {
//!         if let ActionView::RefreshRows(victims) = action {
//!             preventive_refreshes += victims.len();
//!         }
//!     }
//! }
//! assert!(preventive_refreshes > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod aqua;
pub mod blockhammer;
pub mod graphene;
pub mod hydra;
pub mod mechanism;
pub mod misra_gries;
pub mod para;
pub mod prac;
pub mod rega;
pub mod rfm;
pub mod twice;

pub use action::{ActionSink, ActionView, ActivationEvent, PreventiveAction, ScoreAttribution};
pub use aqua::Aqua;
pub use blockhammer::BlockHammer;
pub use graphene::Graphene;
pub use hydra::Hydra;
pub use mechanism::{MechanismKind, NoMitigation, TriggerMechanism};
pub use misra_gries::MisraGries;
pub use para::Para;
pub use prac::Prac;
pub use rega::Rega;
pub use rfm::Rfm;
pub use twice::Twice;
