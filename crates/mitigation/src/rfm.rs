//! Periodic Refresh Management (RFM) [JEDEC DDR5, JESD79-5].
//!
//! With RFM, the memory controller maintains a Rolling Accumulated ACT (RAA)
//! counter per bank and issues an RFM command whenever the counter reaches the
//! RAA Initial Management Threshold (RAAIMT). The RFM command gives the DRAM
//! chip a time window in which its internal (vendor-specific) logic performs
//! preventive refreshes. The threshold is scaled to the RowHammer threshold
//! following the mathematically-secure configurations of prior work
//! (reference \[220\] in the paper), so protecting weaker chips requires more
//! frequent RFMs and thus more bank-blocked time.

use crate::action::{ActionSink, ActivationEvent};
use crate::mechanism::{MechanismKind, TriggerMechanism};
use bh_dram::DramGeometry;

/// The periodic-RFM mechanism.
#[derive(Debug)]
pub struct Rfm {
    geometry: DramGeometry,
    raaimt: u64,
    /// Per flat bank: rolling accumulated activation counter.
    counters: Vec<u64>,
    rfms_issued: u64,
}

impl Rfm {
    /// Creates the RFM mechanism for RowHammer threshold `nrh`.
    ///
    /// # Panics
    /// Panics if `nrh < 8`.
    pub fn new(geometry: DramGeometry, nrh: u64) -> Self {
        assert!(nrh >= 8, "N_RH must be at least 8");
        // RAAIMT scaled so that in-DRAM TRR can keep up: one RFM window per
        // N_RH/8 activations of a bank (≈80 at N_RH = 640, matching the
        // JEDEC-suggested default cadence).
        let raaimt = (nrh / 8).max(4);
        let banks = geometry.banks_per_channel();
        Rfm { geometry, raaimt, counters: vec![0; banks], rfms_issued: 0 }
    }

    /// The RAAIMT threshold in use.
    pub fn raaimt(&self) -> u64 {
        self.raaimt
    }

    /// RFM commands requested so far.
    pub fn rfms_issued(&self) -> u64 {
        self.rfms_issued
    }

    /// Current RAA counter of a bank (for tests and statistics).
    pub fn raa_counter(&self, flat_bank: usize) -> u64 {
        self.counters[flat_bank]
    }
}

impl TriggerMechanism for Rfm {
    fn name(&self) -> &'static str {
        "RFM"
    }

    fn kind(&self) -> MechanismKind {
        MechanismKind::Rfm
    }

    fn on_activation(&mut self, event: &ActivationEvent, sink: &mut ActionSink) {
        let bank = self.geometry.flat_bank(event.row.bank);
        self.counters[bank] += 1;
        if self.counters[bank] >= self.raaimt {
            self.counters[bank] = 0;
            self.rfms_issued += 1;
            sink.push_rfm(event.row.bank);
        }
    }

    fn storage_bits(&self) -> u64 {
        // One RAA counter per bank in the memory controller.
        self.geometry.banks_per_channel() as u64 * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::PreventiveAction;
    use bh_dram::{BankAddr, RowAddr, ThreadId};

    fn event(bank: usize, row: usize, cycle: u64) -> ActivationEvent {
        ActivationEvent {
            row: RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank }, row },
            thread: ThreadId(0),
            cycle,
        }
    }

    #[test]
    fn rfm_issued_every_raaimt_activations() {
        let mut r = Rfm::new(DramGeometry::tiny(), 1024);
        assert_eq!(r.raaimt(), 128);
        let mut rfms = 0;
        for i in 0..1280u64 {
            // Spread over distinct rows: RFM counts bank activations, not
            // per-row activations.
            let acts = r.on_activation_vec(&event(0, (i % 50) as usize, i));
            rfms += acts.len();
            for a in acts {
                assert!(matches!(a, PreventiveAction::IssueRfm { bank } if bank.bank == 0));
            }
        }
        assert_eq!(rfms, 10);
        assert_eq!(r.rfms_issued(), 10);
    }

    #[test]
    fn counters_are_per_bank() {
        let mut r = Rfm::new(DramGeometry::tiny(), 1024);
        for i in 0..100u64 {
            assert!(r.on_activation_vec(&event(0, 1, i)).is_empty());
            assert!(r.on_activation_vec(&event(1, 1, i)).is_empty());
        }
        assert_eq!(r.raa_counter(0), 100);
        assert_eq!(r.raa_counter(1), 100);
        assert_eq!(r.rfms_issued(), 0);
    }

    #[test]
    fn threshold_scales_with_nrh() {
        assert!(
            Rfm::new(DramGeometry::tiny(), 4096).raaimt()
                > Rfm::new(DramGeometry::tiny(), 64).raaimt()
        );
        assert_eq!(Rfm::new(DramGeometry::tiny(), 64).raaimt(), 8);
    }

    #[test]
    fn metadata() {
        let r = Rfm::new(DramGeometry::tiny(), 512);
        assert_eq!(r.name(), "RFM");
        assert_eq!(r.kind(), MechanismKind::Rfm);
        assert_eq!(r.storage_bits(), DramGeometry::tiny().banks_per_channel() as u64 * 16);
    }
}
