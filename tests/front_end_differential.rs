//! Differential testing of the two CPU front-ends.
//!
//! The data-oriented engine (`FrontEndKind::Engine`, `bh_cpu::CoreEngine`)
//! must be *bit-identical* to the per-object reference model
//! (`FrontEndKind::Legacy`, one `bh_cpu::Core` per thread): same IPCs, cycle
//! counts, stall accounting, cache statistics, preventive actions, suspect
//! flags, latency histograms, energy — the whole [`SimulationResult`]. This
//! suite runs the same workload under both front-ends — across **both
//! scheduler kernels**, the full mechanism × ±BreakHammer matrix, multiple
//! channel counts, and the `max_dram_cycles` cutoff edge (where hard-stall
//! debt is settled, not replayed by a wake-up) — and asserts full equality.
//!
//! The unit-level counterpart (randomized traces and stall patterns against
//! a scripted LLC) is the differential proptest in `bh_cpu::engine`.

use breakhammer_suite::cpu::Trace;
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::{
    FrontEndKind, SchedulerKind, SimulationResult, System, SystemConfig, TerminationReason,
};

mod common;
use common::{attack_traces, benign_traces};

/// Runs `config` under both front-ends and returns (legacy, engine).
fn run_both(
    mut config: SystemConfig,
    traces: &[Trace],
    required: Vec<usize>,
) -> (SimulationResult, SimulationResult) {
    config.front_end = FrontEndKind::Legacy;
    let legacy = System::new(config.clone(), traces, required.clone()).run();
    config.front_end = FrontEndKind::Engine;
    let engine = System::new(config, traces, required).run();
    (legacy, engine)
}

fn assert_identical(config: SystemConfig, traces: &[Trace], required: Vec<usize>) {
    let label = format!("{} [{:?}]", config.summary(), config.scheduler);
    let (legacy, engine) = run_both(config, traces, required);
    assert_eq!(legacy, engine, "front-ends diverged for {label}");
}

/// Every mechanism (and the no-defense baseline), with and without
/// BreakHammer, under attack, under **both scheduler kernels**: the SoA
/// engine must be bit-identical to the per-object cores.
#[test]
fn all_mechanisms_under_attack_are_identical_across_front_ends() {
    for mechanism in [
        MechanismKind::None,
        MechanismKind::Para,
        MechanismKind::Graphene,
        MechanismKind::Hydra,
        MechanismKind::Twice,
        MechanismKind::Aqua,
        MechanismKind::Rega,
        MechanismKind::Rfm,
        MechanismKind::Prac,
        MechanismKind::BlockHammer,
    ] {
        for breakhammer in [false, true] {
            if mechanism == MechanismKind::None && breakhammer {
                continue;
            }
            for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
                let mut config = SystemConfig::fast_test(mechanism, 128, breakhammer);
                config.instructions_per_core = 4_000;
                config.scheduler = kernel;
                let traces = attack_traces(&config, 1_500, 100);
                assert_identical(config, &traces, vec![0, 1, 2]);
            }
        }
    }
}

/// All-benign workloads (no attacker, different stall mix: mostly hits and
/// short misses instead of quota starvation).
#[test]
fn benign_workloads_are_identical_across_front_ends() {
    for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 256, true);
        config.instructions_per_core = 6_000;
        config.scheduler = kernel;
        let traces = benign_traces(&config, 2_000, 7);
        assert_identical(config, &traces, vec![0, 1, 2, 3]);
    }
}

/// The sharded memory system: both front-ends must agree at 1, 2 and 4
/// channels (the 1-channel fast path and the channel-routing path both feed
/// the same LLC/fill plumbing the front-end interacts with).
#[test]
fn multichannel_systems_are_identical_across_front_ends() {
    for channels in [1usize, 2, 4] {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, true);
        config.geometry = config.geometry.with_channels(channels);
        config.instructions_per_core = 4_000;
        let traces = attack_traces(&config, 1_500, 100);
        assert_identical(config, &traces, vec![0, 1, 2]);
    }
}

/// The cutoff edge: a run that ends at `max_dram_cycles` with cores still
/// hard-stalled must settle identical stall debt in both front-ends (every
/// unfinished core's cycle count is the exact CPU-tick horizon — the same
/// invariant `tests/cutoff_accounting.rs` pins for the kernels).
#[test]
fn cutoff_with_outstanding_stall_debt_is_identical_across_front_ends() {
    for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
        // AQUA at minimum N_RH under attack is the pathological slow case the
        // cutoff exists for: migrations swamp the channel and cores starve.
        let mut config = SystemConfig::fast_test(MechanismKind::Aqua, 64, false);
        config.instructions_per_core = 50_000;
        config.max_dram_cycles = 40_000; // cut off long before completion
        config.scheduler = kernel;
        let traces = attack_traces(&config, 1_500, 100);
        let (legacy, engine) = run_both(config, &traces, vec![0, 1, 2]);
        assert_eq!(legacy, engine, "front-ends diverged at the cutoff [{kernel:?}]");
        assert!(
            legacy.cores.iter().any(|c| !c.finished),
            "the cutoff case must actually cut off mid-run to exercise debt settling"
        );
    }
}

/// Quota starvation: BreakHammer throttles the attacker to a single MSHR, so
/// the attacker spends most of the run in the memoized reject-spin path —
/// the engine's spin accounting must match the reference exactly.
#[test]
fn quota_starved_attacker_is_identical_across_front_ends() {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 64, true);
    config.instructions_per_core = 5_000;
    let mut bh_cfg = config.effective_breakhammer_config();
    bh_cfg.threat_threshold = 4.0; // identify the attacker almost immediately
    config.breakhammer_config = Some(bh_cfg);
    let traces = attack_traces(&config, 1_500, 100);
    let (legacy, engine) = run_both(config, &traces, vec![0, 1, 2]);
    assert_eq!(legacy, engine, "front-ends diverged under quota starvation");
    assert!(engine.cache.quota_rejections > 0, "the scenario must actually quota-starve");
}

/// The watchdog samples progress through the front-end trait (retired
/// instructions, hard-stall bits); on a chaos-injected livelock both
/// front-ends must produce the identical verdict and report, under both
/// kernels.
#[test]
fn watchdog_livelock_verdict_is_identical_across_front_ends() {
    for kernel in [SchedulerKind::PerCycle, SchedulerKind::EventDriven] {
        let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
        config.instructions_per_core = 50_000;
        config.chaos.drop_fills_after = Some(1_000);
        config.watchdog.epoch_cycles = 5_000;
        config.watchdog.stall_epochs = 4;
        config.scheduler = kernel;
        let traces = benign_traces(&config, 2_000, 7);
        let (legacy, engine) = run_both(config, &traces, vec![0, 1, 2, 3]);
        assert_eq!(
            legacy.termination,
            TerminationReason::Livelock,
            "the injected livelock must be classified [{kernel:?}]"
        );
        assert_eq!(legacy, engine, "watchdog verdict diverged across front-ends [{kernel:?}]");
    }
}
