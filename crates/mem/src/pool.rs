//! Persistent worker pool for epoch-barrier parallel channel stepping.
//!
//! [`ChannelPool`] owns long-lived worker threads that advance disjoint
//! per-channel [`MemoryController`]s through one epoch `(from, to)` at a
//! time. Each epoch is a *generation*: the main thread publishes a task list,
//! bumps the generation counter, and every participant — the workers plus the
//! main thread itself — processes the statically assigned subset
//! `i ≡ participant (mod participants)`. Static assignment means there is no
//! shared grab counter to race on across generations: a straggler from the
//! previous epoch can never steal (or replay) a slot of the next one, because
//! the main thread blocks until the per-generation completion count reaches
//! the task count before it publishes again.
//!
//! Determinism does not depend on the pool at all: every task advances one
//! channel whose state nobody else touches during the epoch, cross-channel
//! effects are recorded as [`BhEvent`]s and replayed by the caller in
//! (cycle, channel-index) order after the barrier, and the caller may equally
//! run every task inline (see [`advance_channel`]) when the epoch is too
//! short to amortize a wake-up. Worker count is a pure throughput knob.

use crate::controller::{BhEvent, BhSink, MemoryController};
use crate::request::MemRequest;
use bh_dram::Cycle;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

/// Advances one channel controller from `now = from` up to (excluding) `to`,
/// visiting exactly the cycles at which this channel can make progress — the
/// per-channel half of an epoch.
///
/// The protocol replays, event by event, what the serial kernel would have
/// done for this channel at the merged steps inside `(from, to)`:
///
/// * At each of the channel's own event cycles `e` (its memoized `next_event`
///   horizon), first retry the channel's deferred requests — queue space only
///   opens when this channel issues, and a post-issue tick always schedules
///   the `e + 1` event where the serial kernel's `retry_pending` would have
///   promoted too — then tick the controller. The serial kernel's ticks at
///   *other* channels' event cycles are pure no-ops here (the memo guarantees
///   it) and are skipped entirely.
/// * Cycles between own events with a still-blocked deferred request absorb
///   one enqueue rejection each, exactly like the serial kernel's one failed
///   front retry per step plus its bulk `absorb_enqueue_rejections` over dead
///   cycles (a failed [`MemoryController::try_enqueue`] counts itself).
///
/// The step at `to` itself is *not* performed: the caller runs it through the
/// normal serial path after the epoch merge, so cross-channel effects
/// (response draining, quota propagation, BreakHammer window edges) happen
/// under the serial schedule's ordering.
///
/// Returns the number of controller tick events processed.
pub fn advance_channel(
    ctrl: &mut MemoryController,
    pending: &mut VecDeque<MemRequest>,
    mut events: Option<&mut Vec<BhEvent>>,
    from: Cycle,
    to: Cycle,
) -> u64 {
    let mut now = from;
    let mut ticks = 0u64;
    loop {
        let e = ctrl.next_event(now).max(now + 1);
        if e >= to {
            break;
        }
        if !pending.is_empty() {
            let gap = e - now - 1;
            if gap > 0 {
                ctrl.absorb_enqueue_rejections(gap);
            }
            while let Some(req) = pending.front().copied() {
                if ctrl.try_enqueue(req).is_ok() {
                    pending.pop_front();
                } else {
                    break;
                }
            }
        }
        match events.as_deref_mut() {
            Some(buf) => ctrl.tick_sink(e, BhSink::Record(buf)),
            None => ctrl.tick_sink(e, BhSink::None),
        }
        ticks += 1;
        now = e;
    }
    if !pending.is_empty() && to > now + 1 {
        ctrl.absorb_enqueue_rejections(to - now - 1);
    }
    ticks
}

/// One channel's share of an epoch: raw pointers into the memory system's
/// per-channel state, erased of lifetimes so the task can cross a thread
/// boundary. The pointers stay valid for the whole dispatch because
/// [`ChannelPool::dispatch`] blocks until every task of the generation has
/// completed before returning control to the borrowing caller.
pub struct ChannelTask {
    ctrl: *mut MemoryController,
    pending: *mut VecDeque<MemRequest>,
    events: *mut Vec<BhEvent>,
    ticks: *mut u64,
    record: bool,
    from: Cycle,
    to: Cycle,
}

// SAFETY: each task's pointers target state owned by exactly one channel, and
// the pool's static assignment hands each task to exactly one participant per
// generation — no two threads ever dereference the same channel's pointers
// concurrently, and the main thread does not touch them while a dispatch is
// in flight.
unsafe impl Send for ChannelTask {}

impl std::fmt::Debug for ChannelTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTask")
            .field("from", &self.from)
            .field("to", &self.to)
            .field("record", &self.record)
            .finish_non_exhaustive()
    }
}

impl ChannelTask {
    /// Builds the task advancing `ctrl` (with its retry deque and event
    /// buffer) through the epoch `(from, to)`.
    pub fn new(
        ctrl: &mut MemoryController,
        pending: &mut VecDeque<MemRequest>,
        events: &mut Vec<BhEvent>,
        ticks: &mut u64,
        record: bool,
        from: Cycle,
        to: Cycle,
    ) -> Self {
        ChannelTask { ctrl, pending, events, ticks, record, from, to }
    }

    /// Runs the task.
    ///
    /// # Safety
    /// The referents of the task's pointers must still be live and must not
    /// be accessed by anyone else for the duration of the call.
    unsafe fn run(&self) {
        // SAFETY: the caller guarantees the controller is live and unshared
        // for the duration of the call (see the function contract).
        let ctrl = unsafe { &mut *self.ctrl };
        // SAFETY: same contract — the retry deque belongs to this channel
        // alone while the task runs.
        let pending = unsafe { &mut *self.pending };
        // SAFETY: same contract — the event buffer is only dereferenced by
        // this task, and only when recording was requested at construction.
        let events = if self.record { Some(unsafe { &mut *self.events }) } else { None };
        let ticks = advance_channel(ctrl, pending, events, self.from, self.to);
        // SAFETY: same contract — the tick out-slot is exclusively ours
        // until the dispatch barrier releases the borrowing caller.
        unsafe { *self.ticks += ticks };
    }
}

/// State shared between the main thread and the pool's workers.
struct Shared {
    /// Bumped (release) by the main thread after publishing `tasks`; workers
    /// acquire-load it to detect a new generation.
    generation: AtomicU64,
    /// Tasks completed by *workers* in the current generation (the main
    /// thread tracks its own share separately); release-incremented per
    /// worker after its share is done, acquire-read by the main thread's
    /// barrier wait.
    done: AtomicUsize,
    /// Set on drop; workers exit their wait loop.
    shutdown: AtomicBool,
    /// The current generation's task list. Written by the main thread before
    /// the generation bump, read-only during the generation (each participant
    /// dereferences only its own statically assigned indices).
    tasks: UnsafeCell<Vec<ChannelTask>>,
}

// SAFETY: `tasks` is published with a release generation bump and read after
// an acquire load of the same counter; within a generation each element is
// accessed by exactly one participant (static assignment).
unsafe impl Sync for Shared {}

/// A persistent pool of epoch workers (see the module docs for the
/// generation protocol). Dropping the pool shuts the workers down and joins
/// them.
pub struct ChannelPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: Vec<Thread>,
    /// Total participants: worker threads + the main thread.
    participants: usize,
}

impl std::fmt::Debug for ChannelPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelPool")
            .field("participants", &self.participants)
            .finish_non_exhaustive()
    }
}

/// How long a waiting worker spins before parking between epochs. Epochs in
/// the hot loop are microseconds apart; parking too eagerly would put every
/// epoch on the scheduler's wake-up latency.
const SPIN_ROUNDS: u32 = 4_096;
/// Park timeout between spin bursts — a bounded nap so a missed unpark can
/// only ever delay an epoch, never deadlock it.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

impl ChannelPool {
    /// Spawns a pool with `workers` extra threads (the main thread always
    /// participates as well, so the pool executes up to `workers + 1` tasks
    /// concurrently). `workers == 0` yields a degenerate pool that runs every
    /// task inline on the caller.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            generation: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            tasks: UnsafeCell::new(Vec::new()),
        });
        let participants = workers + 1;
        let mut handles = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers);
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("bh-epoch-{index}"))
                .spawn(move || worker_loop(&shared, index, participants))
                .expect("spawning epoch worker");
            threads.push(handle.thread().clone());
            handles.push(handle);
        }
        ChannelPool { shared, handles, threads, participants }
    }

    /// Number of participants (worker threads + the main thread).
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Runs one generation: executes every task in `tasks` across the pool's
    /// participants and returns once all of them have completed (the barrier
    /// of the epoch). `tasks` is drained into the shared slot and handed
    /// back empty, keeping its allocation warm.
    pub fn dispatch(&mut self, tasks: &mut Vec<ChannelTask>) {
        let len = tasks.len();
        if len == 0 {
            return;
        }
        // SAFETY: no generation is in flight (dispatch blocked until the
        // previous one completed), so the main thread is the only accessor.
        let slot = unsafe { &mut *self.shared.tasks.get() };
        slot.clear();
        slot.append(tasks);
        self.shared.done.store(0, Ordering::Relaxed);
        self.shared.generation.fetch_add(1, Ordering::Release);
        for thread in &self.threads {
            thread.unpark();
        }
        // The main thread is participant `participants - 1`.
        let mine = self.participants - 1;
        let mut main_count = 0usize;
        let mut i = mine;
        while i < len {
            // SAFETY: static assignment — no other participant touches
            // index `i`, and the task's referents outlive this call.
            unsafe { slot[i].run() };
            main_count += 1;
            i += self.participants;
        }
        let expected = len - main_count;
        while self.shared.done.load(Ordering::Acquire) != expected {
            std::hint::spin_loop();
        }
    }
}

impl Drop for ChannelPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for thread in &self.threads {
            thread.unpark();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, participants: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next generation (spin first, then bounded parks).
        let mut spins = 0u32;
        loop {
            let generation = shared.generation.load(Ordering::Acquire);
            if generation != seen {
                seen = generation;
                break;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::park_timeout(PARK_TIMEOUT);
            }
        }
        // SAFETY: the acquire load above synchronizes with the publishing
        // release bump; during the generation the list is read-only and each
        // index is dereferenced by exactly one participant.
        let tasks = unsafe { &*shared.tasks.get() };
        let mut completed = 0usize;
        let mut i = index;
        while i < tasks.len() {
            // SAFETY: static assignment (see above).
            unsafe { tasks[i].run() };
            completed += 1;
            i += participants;
        }
        shared.done.fetch_add(completed, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    /// The generation protocol itself, exercised with inert tasks: every
    /// index runs exactly once per dispatch, across repeated generations.
    #[test]
    fn every_task_runs_exactly_once_per_generation() {
        // `advance_channel` needs a real controller; the protocol test
        // instead counts via the `ticks` out-slot with an empty span, which
        // makes `run` a pure counter write (from + 1 >= to ⟹ zero ticks).
        let mut pool = ChannelPool::new(3);
        let counters: Vec<TestCounter> = (0..17).map(|_| TestCounter::new(0)).collect();
        for _generation in 0..50 {
            // Tasks with a degenerate span would still need controller
            // pointers; build them against scratch controllers instead.
            let mut ticks: Vec<u64> = vec![0; counters.len()];
            let mut ctrls = scratch_controllers(counters.len());
            let mut pendings: Vec<VecDeque<MemRequest>> =
                (0..counters.len()).map(|_| VecDeque::new()).collect();
            let mut events: Vec<Vec<BhEvent>> = (0..counters.len()).map(|_| Vec::new()).collect();
            let mut tasks: Vec<ChannelTask> = ctrls
                .iter_mut()
                .zip(pendings.iter_mut())
                .zip(events.iter_mut())
                .zip(ticks.iter_mut())
                .map(|(((ctrl, pending), events), ticks)| {
                    // A one-cycle span: the worker protocol breaks
                    // immediately (next event >= to), so the task only
                    // writes its tick count (0) — but `run` still executed.
                    ChannelTask::new(ctrl, pending, events, ticks, false, 0, 1)
                })
                .collect();
            pool.dispatch(&mut tasks);
            assert!(tasks.is_empty(), "dispatch drains the task list");
            for (counter, t) in counters.iter().zip(ticks.iter()) {
                assert_eq!(*t, 0);
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
        for counter in &counters {
            assert_eq!(counter.load(Ordering::Relaxed), 50);
        }
    }

    /// A real workload: the pool-advanced controller matches a serially
    /// advanced clone tick for tick.
    #[test]
    fn pooled_advance_matches_inline_advance() {
        use bh_dram::{PhysAddr, ThreadId};

        let mut pool = ChannelPool::new(2);
        let mut a = scratch_controllers(1).pop().unwrap();
        let mut b = scratch_controllers(1).pop().unwrap();
        for id in 0..8u64 {
            let req = MemRequest::read(id, ThreadId(0), PhysAddr(0x40 * id), 0);
            a.try_enqueue(req).unwrap();
            b.try_enqueue(req).unwrap();
        }
        let mut pending_a = VecDeque::new();
        let mut events_a = Vec::new();
        let mut ticks_a = 0u64;
        let mut tasks = vec![ChannelTask::new(
            &mut a,
            &mut pending_a,
            &mut events_a,
            &mut ticks_a,
            false,
            0,
            5_000,
        )];
        pool.dispatch(&mut tasks);

        let mut pending_b = VecDeque::new();
        let ticks_b = advance_channel(&mut b, &mut pending_b, None, 0, 5_000);

        assert_eq!(ticks_a, ticks_b);
        assert_eq!(a.stats().reads_served, b.stats().reads_served);
        assert!(a.stats().reads_served > 0, "the workload must make progress");
    }

    fn scratch_controllers(n: usize) -> Vec<MemoryController> {
        use crate::config::MemControllerConfig;
        use bh_dram::{DramChannel, DramGeometry, TimingParams};
        use bh_mitigation::MechanismKind;
        (0..n)
            .map(|i| {
                let geometry = DramGeometry::tiny();
                let timing = TimingParams::fast_test();
                let mechanism = MechanismKind::None.build(&geometry, &timing, 1024, i as u64);
                let channel = DramChannel::with_rowhammer(geometry, timing, 1024);
                MemoryController::new(MemControllerConfig::paper_table1(4), channel, mechanism)
            })
            .collect()
    }
}
