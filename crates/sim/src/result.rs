//! Results produced by a full-system simulation run.

use bh_core::BreakHammerStats;
use bh_cpu::CacheStats;
use bh_dram::{Cycle, DramStats, RowAddr, ThreadId};
use bh_mem::{ControllerStats, LatencyHistogram, SteppingStats};
use serde::{Deserialize, Serialize};

/// Performance of one core over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorePerformance {
    /// The hardware thread.
    pub thread: ThreadId,
    /// Instructions retired.
    pub instructions: u64,
    /// Core cycles elapsed while the core was running.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Whether the core reached its instruction budget.
    pub finished: bool,
}

/// Per-memory-channel slice of a simulation's statistics (one entry per
/// channel, in channel order). On the paper's single-channel system this is
/// one entry equal to the aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelBreakdown {
    /// This channel's memory-controller statistics.
    pub controller: ControllerStats,
    /// This channel's DRAM command statistics.
    pub dram: DramStats,
    /// This channel's DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// Would-be bitflips recorded by this channel's victim model.
    pub bitflips: usize,
    /// Machine-check events raised on this channel by the ECC model (one per
    /// detected-but-uncorrectable row under SEC-DED; always 0 without ECC).
    #[serde(default)]
    pub machine_checks: u64,
}

/// The security outcome of a run under the configured fault model and ECC
/// scheme ([`bh_dram::FaultConfig`]): the raw flip count broken down by what
/// ECC did with each flip, plus the verdict against the workload's victim
/// layout. All zeros (with `attack_success: false`) when no flip occurred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Raw bit-flips before ECC, summed over all channels.
    pub flips_raw: u64,
    /// Flips corrected by ECC (single-flip rows under SEC-DED).
    pub corrected: u64,
    /// Flips detected but not corrected (double-flip rows under SEC-DED;
    /// each such row also raises a machine check, see
    /// [`ChannelBreakdown::machine_checks`]).
    pub detected: u64,
    /// Flips that escaped ECC silently (3+ flips per row under SEC-DED;
    /// every flip when no ECC is configured).
    pub silent: u64,
    /// Whether the run satisfies the workload's
    /// [`bh_dram::SuccessCriterion`] — by default, at least one *silent*
    /// flip landed in a watched victim row.
    pub attack_success: bool,
}

/// Why a simulation run stopped.
///
/// `Completed` and `CycleCutoff` are the two historical outcomes (every run
/// used to be one or the other, implicitly); `Livelock` and `BudgetExceeded`
/// are produced by the forward-progress watchdog
/// ([`WatchdogConfig`](crate::WatchdogConfig)). The verdict is computed at
/// deterministic DRAM-cycle epoch boundaries from step-invariant state only,
/// so it is bit-identical across both scheduler kernels, both stepping modes
/// and both front-ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationReason {
    /// Every required core retired its instruction budget.
    #[default]
    Completed,
    /// The run reached `max_dram_cycles` before all required cores finished.
    /// Still a legitimate datapoint: IPCs measured up to the cutoff are valid
    /// samples of a heavily-throttled configuration.
    CycleCutoff,
    /// The watchdog observed K consecutive epochs with zero global progress
    /// (or a recurring state-digest fixpoint): the run would never have
    /// completed. A [`LivelockReport`] snapshot accompanies this verdict.
    Livelock,
    /// A configured deterministic budget (max watchdog epochs or max
    /// preventive actions) was exhausted at an epoch boundary.
    BudgetExceeded,
}

impl TerminationReason {
    /// Stable lowercase label used in campaign stores and reports.
    pub fn label(self) -> &'static str {
        match self {
            TerminationReason::Completed => "completed",
            TerminationReason::CycleCutoff => "cutoff",
            TerminationReason::Livelock => "livelock",
            TerminationReason::BudgetExceeded => "budget",
        }
    }
}

/// One core's lane state at the moment a livelock was diagnosed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreLaneState {
    /// The hardware thread.
    pub thread: ThreadId,
    /// Instructions retired so far.
    pub retired: u64,
    /// Whether the core had already finished its budget.
    pub finished: bool,
    /// Whether the core was hard-stalled (instruction window full behind an
    /// outstanding miss) when the snapshot was taken.
    pub hard_stalled: bool,
}

/// One memory channel's queue state at the moment a livelock was diagnosed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelLaneState {
    /// The channel index.
    pub channel: usize,
    /// Demand requests sitting in the controller's queue.
    pub queued: usize,
    /// Requests parked in the channel's enqueue-retry deque (rejected by
    /// quota or MSHR pressure, waiting to re-enter the queue).
    pub retry_deque: usize,
    /// Preventive commands the mitigation has scheduled but not yet issued.
    pub pending_preventive: usize,
    /// Rows the mechanism is currently blocking/blacklisting (0 for
    /// mechanisms that never block).
    pub blocked_rows: usize,
}

/// Diagnostic snapshot produced when the forward-progress watchdog classifies
/// a run as livelocked: what every core lane, every channel queue, and the
/// throttling machinery looked like at the detection boundary.
///
/// Built exclusively from step-invariant state at a deterministic epoch
/// boundary, so the report — like the verdict — is bit-identical across
/// kernels, stepping modes and front-ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LivelockReport {
    /// DRAM cycle of the epoch boundary where the verdict fired.
    pub detected_at: Cycle,
    /// Consecutive zero-progress epochs observed (0 when the state-digest
    /// fixpoint detector fired first).
    pub zero_progress_epochs: u32,
    /// True when the recurring (state-digest, stall-set) fixpoint detector
    /// fired rather than the zero-progress counter.
    pub fixpoint: bool,
    /// Total instructions retired across all cores at detection.
    pub instructions_retired: u64,
    /// Demand reads served across all channels at detection.
    pub reads_served: u64,
    /// Writebacks served across all channels at detection.
    pub writes_served: u64,
    /// Preventive actions taken across all channels at detection.
    pub preventive_actions: u64,
    /// Per-core lane state.
    pub cores: Vec<CoreLaneState>,
    /// Per-channel queue depths, retry-deque lengths and mechanism block
    /// state.
    pub channels: Vec<ChannelLaneState>,
    /// Per-thread suspect flags at detection (empty without BreakHammer).
    pub suspects: Vec<bool>,
}

impl std::fmt::Display for LivelockReport {
    /// Compact single-line form, embedded verbatim in campaign-store
    /// `livelock` records (the flat JSONL schema holds it as one string
    /// field).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "livelock at cycle {} ({}): {} instructions retired, {} reads / {} writes served, \
             {} preventive actions",
            self.detected_at,
            if self.fixpoint {
                "state-digest fixpoint".to_string()
            } else {
                format!("{} zero-progress epochs", self.zero_progress_epochs)
            },
            self.instructions_retired,
            self.reads_served,
            self.writes_served,
            self.preventive_actions,
        )?;
        for core in &self.cores {
            write!(
                f,
                "; core{}[retired={}{}{}]",
                core.thread.index(),
                core.retired,
                if core.finished { " finished" } else { "" },
                if core.hard_stalled { " hard-stalled" } else { "" },
            )?;
        }
        for ch in &self.channels {
            write!(
                f,
                "; ch{}[queued={} retry={} preventive={} blocked={}]",
                ch.channel, ch.queued, ch.retry_deque, ch.pending_preventive, ch.blocked_rows,
            )?;
        }
        if self.suspects.iter().any(|&s| s) {
            let list: Vec<String> = self
                .suspects
                .iter()
                .enumerate()
                .filter(|(_, &s)| s)
                .map(|(i, _)| i.to_string())
                .collect();
            write!(f, "; suspects=[{}]", list.join(","))?;
        }
        Ok(())
    }
}

/// Disturbance accumulated by one watched victim row over the run (declared
/// by the workload's `VictimLayout` and registered via
/// [`System::watch_victims`](crate::System::watch_victims)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VictimReport {
    /// The channel whose tracker watched the row.
    pub channel: usize,
    /// The watched victim row.
    pub row: RowAddr,
    /// Activations its aggressor neighbors accumulated against it (the
    /// victim-model disturbance counter at end of run).
    pub disturbance: u64,
    /// Would-be bitflips recorded on this row.
    pub bitflips: usize,
}

/// Everything measured during one simulation run.
///
/// Implements `PartialEq` so the differential test suite can assert that the
/// per-cycle and event-driven kernels produce bit-identical results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Per-core performance.
    pub cores: Vec<CorePerformance>,
    /// Total DRAM command-clock cycles simulated.
    pub dram_cycles: Cycle,
    /// Memory-controller statistics.
    pub controller: ControllerStats,
    /// DRAM command statistics.
    pub dram: DramStats,
    /// LLC statistics.
    pub cache: CacheStats,
    /// Total DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed (Fig. 10's quantity).
    pub preventive_actions: u64,
    /// Would-be RowHammer bitflips recorded by the victim model (must stay 0
    /// for any deterministic mitigation, with or without BreakHammer).
    pub bitflips: usize,
    /// Per-thread flag: was the thread ever identified as a suspect?
    pub ever_suspect: Vec<bool>,
    /// BreakHammer statistics, when BreakHammer was attached.
    pub breakhammer: Option<BreakHammerStats>,
    /// Per-thread read-latency histograms (merged over all channels).
    pub latency: Vec<LatencyHistogram>,
    /// Per-memory-channel statistics breakdown (one entry per channel).
    #[serde(default)]
    pub per_channel: Vec<ChannelBreakdown>,
    /// End-of-run disturbance of every watched victim row (empty when the
    /// workload declared no victims). Not part of the digest-pinned surface.
    #[serde(default)]
    pub victims: Vec<VictimReport>,
    /// The security outcome under the configured fault model and ECC scheme
    /// (all zeros under the default hard-threshold model with no flips).
    #[serde(default)]
    pub outcome: AttackOutcome,
    /// Epoch-stepping counters (all zeros under serial stepping). *Not* part
    /// of the behavioural surface: serial-vs-parallel differential tests
    /// normalize this field to its default before comparing, since it
    /// describes how the run was scheduled, not what it computed.
    #[serde(default)]
    pub stepping: SteppingStats,
    /// Why the run stopped. Part of the behavioural surface (bit-identical
    /// across kernels/stepping/front-ends) but *not* of the digest-pinned
    /// field list: the watchdog never fires on healthy runs, so pinned
    /// goldens stay byte-identical.
    #[serde(default)]
    pub termination: TerminationReason,
    /// Diagnostic snapshot accompanying a [`TerminationReason::Livelock`]
    /// verdict (`None` otherwise).
    #[serde(default)]
    pub livelock: Option<LivelockReport>,
}

impl SimulationResult {
    /// IPC of a specific thread.
    pub fn ipc_of(&self, thread: ThreadId) -> f64 {
        self.cores[thread.index()].ipc
    }

    /// Sum of IPCs over the given threads (a raw throughput measure).
    pub fn total_ipc(&self, threads: &[usize]) -> f64 {
        threads.iter().map(|t| self.cores[*t].ipc).sum()
    }

    /// Merged read-latency histogram over the given threads (used for the
    /// benign-application latency curves of Figs. 11 and 17).
    pub fn merged_latency(&self, threads: &[usize]) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for t in threads {
            merged.merge(&self.latency[*t]);
        }
        merged
    }

    /// True if every listed core finished its instruction budget.
    pub fn all_finished(&self, threads: &[usize]) -> bool {
        threads.iter().all(|t| self.cores[*t].finished)
    }

    /// The largest disturbance any watched victim row accumulated (0 when no
    /// victims were watched) — the headline "did the victim data survive"
    /// number for scenario tables.
    pub fn max_victim_disturbance(&self) -> u64 {
        self.victims.iter().map(|v| v.disturbance).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SimulationResult {
        let cores = (0..4)
            .map(|i| CorePerformance {
                thread: ThreadId(i),
                instructions: 1000,
                cycles: 500 * (i as u64 + 1),
                ipc: 2.0 / (i as f64 + 1.0),
                finished: i < 3,
            })
            .collect();
        SimulationResult {
            cores,
            dram_cycles: 10_000,
            controller: ControllerStats::default(),
            dram: DramStats::default(),
            cache: CacheStats::default(),
            energy_nj: 123.0,
            preventive_actions: 7,
            bitflips: 0,
            ever_suspect: vec![false, false, false, true],
            breakhammer: None,
            latency: (0..4).map(|_| LatencyHistogram::new()).collect(),
            per_channel: Vec::new(),
            victims: Vec::new(),
            outcome: AttackOutcome::default(),
            stepping: SteppingStats::default(),
            termination: TerminationReason::default(),
            livelock: None,
        }
    }

    #[test]
    fn accessors_work() {
        let r = result();
        assert_eq!(r.ipc_of(ThreadId(0)), 2.0);
        assert!((r.total_ipc(&[0, 1]) - 3.0).abs() < 1e-12);
        assert!(r.all_finished(&[0, 1, 2]));
        assert!(!r.all_finished(&[0, 3]));
        assert_eq!(r.merged_latency(&[0, 1]).count(), 0);
    }

    #[test]
    fn max_victim_disturbance_scans_the_reports() {
        let mut r = result();
        assert_eq!(r.max_victim_disturbance(), 0);
        let bank = bh_dram::BankAddr { rank: 0, bank_group: 0, bank: 0 };
        r.victims = vec![
            VictimReport { channel: 0, row: RowAddr { bank, row: 5 }, disturbance: 3, bitflips: 0 },
            VictimReport { channel: 1, row: RowAddr { bank, row: 7 }, disturbance: 9, bitflips: 1 },
        ];
        assert_eq!(r.max_victim_disturbance(), 9);
    }
}
