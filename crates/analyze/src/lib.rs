//! `bh_analyze` — the workspace determinism-and-safety lint pass.
//!
//! The BreakHammer reproduction pins its simulation outputs with golden
//! digests: every kernel, front-end and stepping mode must produce
//! byte-identical `SimulationResult`s. That guarantee is easy to break with
//! ordinary Rust — iterate a `HashMap`, read the wall clock, forget a field
//! in a stats-merge destructure — and none of those mistakes fail to
//! compile. `bh_analyze` makes them fail CI instead.
//!
//! The tool is deliberately dependency-free: a hand-rolled lexer
//! ([`lexer`]) tokenizes every `.rs` file in the workspace (comments
//! included, strings and chars opaque), and token-level rules ([`rules`])
//! scan the streams. It is not a type checker and does not try to be — each
//! rule trades a little precision for being obvious, fast and
//! self-contained, and the inline allowlist
//! (`// bh-analyze: allow(<rule>) -- <reason>`) handles the justified
//! exceptions. The mandatory reason keeps every escape self-documenting.
//!
//! Rules:
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in digest-pinned crates' non-test code |
//! | `D2` | no wall-clock / ambient nondeterminism outside `bh_bench` and tests |
//! | `S1` | every `unsafe` carries an immediately preceding `// SAFETY:` |
//! | `E1` | every `env::var("BH_…")` read names a registered knob; every registered knob is documented in the README |
//! | `X1` | `bh-exhaustive`-marked structs are always destructured without `..` |
//! | `A0` | (meta) a `bh-analyze:` allow comment is well-formed — cannot itself be allowed |
//!
//! Run it as `cargo run -p bh_analyze -- --deny` (CI does).

pub mod lexer;
pub mod rules;

use lexer::Token;
use std::path::{Path, PathBuf};

/// One finding, anchored to a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes) of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule identifier (`D1`, `D2`, `S1`, `E1`, `X1`, or the meta rule `A0`).
    pub rule: &'static str,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A lexed workspace source file plus the classification the rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (stable diagnostics).
    pub rel_path: String,
    /// Raw file contents (rules S1 and the allowlist need line text).
    pub source: String,
    /// The token stream of [`lexer::lex`].
    pub tokens: Vec<Token>,
    /// `crates/<name>/…` → `Some(name)`; `None` outside `crates/`.
    pub crate_name: Option<String>,
    /// True when the path runs through a `tests/` or `benches/` component —
    /// test code is exempt from the determinism rules D1 and D2.
    pub is_test_path: bool,
}

/// Directory names never descended into, at any depth.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "node_modules"];

/// Path suffix of this crate's lint fixtures: they *intentionally* violate
/// rules, so the workspace walk must not treat them as workspace code.
const FIXTURE_DIR: &str = "crates/analyze/tests/fixtures";

/// Recursively collects the workspace's `.rs` files in sorted order.
fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            if rel_string(root, &path) == FIXTURE_DIR {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_string(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Loads and classifies one source file.
fn load(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let source = std::fs::read_to_string(path)?;
    let rel_path = rel_string(root, path);
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => Some((*name).to_string()),
        _ => None,
    };
    let is_test_path = parts.iter().any(|&p| p == "tests" || p == "benches");
    let tokens = lexer::lex(&source);
    Ok(SourceFile { rel_path, source, tokens, crate_name, is_test_path })
}

/// Analyzes the workspace rooted at `root` and returns all findings, sorted
/// by `(path, line, rule)`.
pub fn analyze_root(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    let files: Vec<SourceFile> =
        paths.iter().map(|p| load(root, p)).collect::<std::io::Result<_>>()?;

    let ctx = rules::WorkspaceContext::gather(&files);

    let mut diagnostics = Vec::new();
    for file in &files {
        let analysis = rules::FileAnalysis::new(file, &mut diagnostics);
        rules::rule_d1(&analysis, &mut diagnostics);
        rules::rule_d2(&analysis, &mut diagnostics);
        rules::rule_s1(&analysis, &mut diagnostics);
        rules::rule_e1_sites(&analysis, &ctx, &mut diagnostics);
        rules::rule_x1(&analysis, &ctx, &mut diagnostics);
    }

    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    rules::rule_e1_readme(&ctx, readme.as_deref(), &mut diagnostics);

    diagnostics.sort();
    diagnostics.dedup();
    Ok(diagnostics)
}
