//! Figure 5: analytical security bound — the maximum RowHammer-preventive
//! score an attack thread can gather before being identified as a suspect
//! (normalized to the average benign score), as a function of the fraction of
//! hardware threads the attacker controls, for different TH_outlier values.
//!
//! This figure is purely analytical (Expression 2) and needs no simulation.

use bh_core::security::{figure5_outlier_thresholds, figure5_series};
use bh_stats::{fmt3, Table};

fn main() {
    let thresholds = figure5_outlier_thresholds();
    let series = figure5_series(&thresholds, 10);

    let mut table = Table::new(["attacker_threads_pct", "th_outlier", "max_attacker_score_ratio"]);
    for point in &series {
        table.push_row([
            format!("{:.0}", point.attacker_fraction * 100.0),
            format!("{:.2}", point.outlier_threshold),
            match point.max_score_ratio {
                Some(r) => fmt3(r),
                None => "unbounded".to_string(),
            },
        ]);
    }
    bh_bench::print_results("Figure 5: worst-case attacker score bound (Expression 2)", &table);

    // The two reference points called out in §5.2.
    let p1 = bh_core::security::max_attacker_score_ratio(0.5, 0.65).expect("bounded");
    let p2 = bh_core::security::max_attacker_score_ratio(0.9, 0.05).expect("bounded");
    println!(
        "TH_outlier=0.65, 50% attacker threads -> {:.2}x the benign average (paper: 4.71x)",
        p1
    );
    println!(
        "TH_outlier=0.05, 90% attacker threads -> {:.2}x the benign average (paper: 1.90x)",
        p2
    );
}
