//! # bh-cpu — trace-driven cores and the shared last-level cache
//!
//! The processor side of the BreakHammer reproduction:
//!
//! * [`Trace`] / [`TraceEntry`] — the instruction-trace format (bursts of
//!   non-memory instructions followed by one memory access), replayed
//!   cyclically; [`CompiledTrace`] is its frozen, `Arc`-shared replay form
//!   (compile once per (mix, seed, geometry), share across every run);
//! * [`CoreEngine`] — the data-oriented front-end: all cores' hot replay
//!   state in flat structure-of-arrays vectors, stepped in one pass per
//!   event epoch;
//! * [`Core`] — the per-object reference model of one 4-wide,
//!   128-entry-window trace-driven core (Table 1) whose in-order retirement
//!   makes DRAM latency visible as lost IPC; `CoreEngine` is differentially
//!   tested against it;
//! * [`LastLevelCache`] — the shared 8 MiB LLC with MSHRs (cache-miss
//!   buffers) and **per-thread MSHR quotas**, the actuator BreakHammer uses to
//!   throttle suspect threads.
//!
//! The system simulator in `bh-sim` connects the LLC's outgoing fills and
//! writebacks to the memory controller in `bh-mem`.
//!
//! ## Example
//!
//! ```
//! use bh_cpu::{CacheConfig, Core, CoreConfig, LastLevelCache, Trace, TraceEntry};
//! use bh_dram::{PhysAddr, ThreadId};
//!
//! let trace = Trace::new(vec![TraceEntry::load(7, PhysAddr(0x1000))]);
//! let mut core = Core::new(ThreadId(0), CoreConfig::paper_table1(), trace, 1_000);
//! let mut llc = LastLevelCache::new(CacheConfig::paper_table1(), 4);
//!
//! let mut cycle = 0;
//! while !core.finished() && cycle < 100_000 {
//!     core.tick(cycle, &mut llc);
//!     // Instantly satisfy every LLC miss (a perfect memory system).
//!     for request in llc.take_outgoing() {
//!         if let Some(token) = request.token {
//!             llc.complete_miss(token);
//!         }
//!     }
//!     cycle += 1;
//! }
//! assert!(core.finished());
//! assert!(core.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod core;
pub mod engine;
pub mod trace;

pub use cache::{
    AccessOutcome, CacheConfig, CacheStats, LastLevelCache, MissToken, OutgoingRequest,
    RejectReason,
};
pub use core::{
    settle_legacy, tick_epoch_legacy, Core, CoreConfig, CoreProgress, CoreStats, StallInfo,
};
pub use engine::CoreEngine;
pub use trace::{CompiledTrace, Trace, TraceEntry};
