//! Events flowing between the memory controller and a RowHammer mitigation
//! mechanism, and the preventive actions a mechanism can request.

use bh_dram::{BankAddr, Cycle, RowAddr, ThreadId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row activation observed by the memory controller, annotated with the
/// hardware thread on whose behalf it was performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationEvent {
    /// The activated row.
    pub row: RowAddr,
    /// The hardware thread whose request caused the activation.
    pub thread: ThreadId,
    /// The DRAM cycle of the activation.
    pub cycle: Cycle,
}

/// A RowHammer-preventive action requested by a mitigation mechanism.
///
/// The memory controller executes these as real DRAM command sequences, so
/// they consume DRAM bandwidth and interfere with demand requests exactly as
/// described in the paper — which is what makes both the performance overhead
/// (§3) and the memory performance attack (§8.1) possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreventiveAction {
    /// Preventively refresh the given victim rows (PARA, Graphene, Hydra,
    /// TWiCe). Each row costs one full row cycle in its bank.
    RefreshRows(Vec<RowAddr>),
    /// Migrate the contents of `source` to `dest` in a quarantine area
    /// (AQUA). Costs reading the whole source row and writing it back to the
    /// destination row.
    MigrateRow {
        /// The aggressor row being quarantined.
        source: RowAddr,
        /// The quarantine destination row.
        dest: RowAddr,
    },
    /// Issue a refresh-management command to `bank`, giving the DRAM chip a
    /// time window for in-DRAM preventive refreshes (RFM, PRAC back-off).
    IssueRfm {
        /// The bank to which the RFM command is directed.
        bank: BankAddr,
    },
    /// Perform an auxiliary memory access on behalf of the mechanism itself
    /// (Hydra's per-row tracking table in DRAM: cache misses and evictions
    /// cost one column access each).
    TableAccess {
        /// The DRAM row holding the accessed table entry.
        row: RowAddr,
        /// True if the access also writes back a dirty entry.
        write_back: bool,
    },
}

impl PreventiveAction {
    /// Number of row-cycle-equivalent DRAM operations this action costs, used
    /// for quick cost accounting and in tests. The memory controller models
    /// the precise command sequence.
    pub fn row_cycle_cost(&self) -> u64 {
        match self {
            PreventiveAction::RefreshRows(rows) => rows.len() as u64,
            // A migration reads and writes a full row: roughly two row cycles
            // plus the column traffic.
            PreventiveAction::MigrateRow { .. } => 2,
            PreventiveAction::IssueRfm { .. } => 1,
            PreventiveAction::TableAccess { write_back, .. } => 1 + u64::from(*write_back),
        }
    }

    /// True if this action interferes with demand requests by occupying a bank
    /// (every action currently does; kept explicit for future extensions).
    pub fn interferes(&self) -> bool {
        true
    }
}

impl fmt::Display for PreventiveAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreventiveAction::RefreshRows(rows) => {
                write!(f, "refresh {} victim row(s)", rows.len())
            }
            PreventiveAction::MigrateRow { source, dest } => {
                write!(f, "migrate {source} -> {dest}")
            }
            PreventiveAction::IssueRfm { bank } => write!(f, "RFM to {bank}"),
            PreventiveAction::TableAccess { row, write_back } => {
                write!(f, "table access at {row}{}", if *write_back { " (writeback)" } else { "" })
            }
        }
    }
}

/// A caller-owned, reusable buffer that [`TriggerMechanism::on_activation`]
/// pushes preventive actions into.
///
/// The activation hot path runs once per DRAM row activation, so mechanisms
/// must not allocate per call. Instead of returning a `Vec<PreventiveAction>`
/// (whose row lists allocate again), mechanisms append into this sink: action
/// headers and victim rows live in two flat `Vec`s whose capacity is reused
/// across calls, so a warmed-up sink never touches the allocator.
///
/// ## Contract
///
/// * The **caller** (the memory controller) owns the sink, clears it before
///   each `on_activation` call, and drains it via [`ActionSink::iter`]
///   afterwards. One action header counts as one preventive action for
///   BreakHammer score attribution, exactly like one `Vec` element did.
/// * The **mechanism** only appends (`push_*`); it never reads, clears or
///   holds on to the sink, and must not assume the sink is empty on entry —
///   a caller is free to batch several events into one sink before draining.
/// * Mechanisms are not re-entered while their actions are drained, so
///   borrowed [`ActionView::RefreshRows`] slices stay valid for the whole
///   drain.
///
/// [`TriggerMechanism::on_activation`]: crate::TriggerMechanism::on_activation
#[derive(Debug, Clone, Default)]
pub struct ActionSink {
    entries: Vec<SinkEntry>,
    rows: Vec<RowAddr>,
}

/// Flat, `Copy` representation of one queued action; row lists are ranges
/// into `ActionSink::rows`.
#[derive(Debug, Clone, Copy)]
enum SinkEntry {
    Refresh { start: u32, len: u32 },
    Migrate { source: RowAddr, dest: RowAddr },
    Rfm { bank: BankAddr },
    Table { row: RowAddr, write_back: bool },
}

/// A borrowed view of one action in an [`ActionSink`] — the non-owning
/// counterpart of [`PreventiveAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionView<'a> {
    /// Preventively refresh the given victim rows.
    RefreshRows(&'a [RowAddr]),
    /// Migrate `source` to the quarantine row `dest` (AQUA).
    MigrateRow {
        /// The aggressor row being quarantined.
        source: RowAddr,
        /// The quarantine destination row.
        dest: RowAddr,
    },
    /// Issue a refresh-management command to `bank`.
    IssueRfm {
        /// The bank to which the RFM command is directed.
        bank: BankAddr,
    },
    /// Auxiliary table access on behalf of the mechanism (Hydra's RCT).
    TableAccess {
        /// The DRAM row holding the accessed table entry.
        row: RowAddr,
        /// True if the access also writes back a dirty entry.
        write_back: bool,
    },
}

impl ActionSink {
    /// Empties the sink, retaining the allocated capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.rows.clear();
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no action is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queues a victim-refresh action covering `rows` (may be empty: an
    /// empty refresh still counts as one preventive action, matching the old
    /// `RefreshRows(vec![])` behaviour at bank edges).
    pub fn push_refresh_rows(&mut self, rows: impl IntoIterator<Item = RowAddr>) {
        let start = self.rows.len();
        self.rows.extend(rows);
        self.entries.push(SinkEntry::Refresh {
            start: start as u32,
            len: (self.rows.len() - start) as u32,
        });
    }

    /// Queues an AQUA row migration.
    pub fn push_migrate(&mut self, source: RowAddr, dest: RowAddr) {
        self.entries.push(SinkEntry::Migrate { source, dest });
    }

    /// Queues an RFM command to `bank`.
    pub fn push_rfm(&mut self, bank: BankAddr) {
        self.entries.push(SinkEntry::Rfm { bank });
    }

    /// Queues a tracking-table access (Hydra).
    pub fn push_table_access(&mut self, row: RowAddr, write_back: bool) {
        self.entries.push(SinkEntry::Table { row, write_back });
    }

    /// Iterates over the queued actions in push order.
    pub fn iter(&self) -> impl Iterator<Item = ActionView<'_>> + '_ {
        self.entries.iter().map(|entry| match *entry {
            SinkEntry::Refresh { start, len } => {
                ActionView::RefreshRows(&self.rows[start as usize..(start + len) as usize])
            }
            SinkEntry::Migrate { source, dest } => ActionView::MigrateRow { source, dest },
            SinkEntry::Rfm { bank } => ActionView::IssueRfm { bank },
            SinkEntry::Table { row, write_back } => ActionView::TableAccess { row, write_back },
        })
    }

    /// Materializes the queued actions as owned [`PreventiveAction`]s
    /// (allocates; meant for tests, examples and statistics, not the hot
    /// path).
    pub fn to_actions(&self) -> Vec<PreventiveAction> {
        self.iter().map(PreventiveAction::from).collect()
    }
}

impl From<ActionView<'_>> for PreventiveAction {
    fn from(view: ActionView<'_>) -> PreventiveAction {
        match view {
            ActionView::RefreshRows(rows) => PreventiveAction::RefreshRows(rows.to_vec()),
            ActionView::MigrateRow { source, dest } => {
                PreventiveAction::MigrateRow { source, dest }
            }
            ActionView::IssueRfm { bank } => PreventiveAction::IssueRfm { bank },
            ActionView::TableAccess { row, write_back } => {
                PreventiveAction::TableAccess { row, write_back }
            }
        }
    }
}

/// How BreakHammer should attribute RowHammer-preventive scores for a given
/// mechanism (§4.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreAttribution {
    /// When a preventive action is performed, attribute a score of 1 split
    /// across threads proportionally to the activations each performed since
    /// the previous preventive action (used by PARA, Graphene, Hydra, TWiCe,
    /// AQUA, RFM and PRAC).
    ProportionalToActivations,
    /// Increment a thread's score by one for every `quota` activations the
    /// thread performs (used by REGA, which performs its refreshes in
    /// parallel with activations and therefore has no discrete action to
    /// attribute).
    PerActivationQuota {
        /// Number of activations per score increment (REGA's `REGA_T`).
        quota: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_dram::BankAddr;

    fn row(r: usize) -> RowAddr {
        RowAddr { bank: BankAddr { rank: 0, bank_group: 0, bank: 0 }, row: r }
    }

    #[test]
    fn action_costs() {
        assert_eq!(PreventiveAction::RefreshRows(vec![row(1), row(2)]).row_cycle_cost(), 2);
        assert_eq!(
            PreventiveAction::MigrateRow { source: row(1), dest: row(9) }.row_cycle_cost(),
            2
        );
        assert_eq!(PreventiveAction::IssueRfm { bank: row(0).bank }.row_cycle_cost(), 1);
        assert_eq!(
            PreventiveAction::TableAccess { row: row(3), write_back: true }.row_cycle_cost(),
            2
        );
        assert!(PreventiveAction::RefreshRows(vec![]).interferes());
    }

    #[test]
    fn action_display() {
        let a = PreventiveAction::RefreshRows(vec![row(1)]);
        assert_eq!(a.to_string(), "refresh 1 victim row(s)");
        let m = PreventiveAction::MigrateRow { source: row(1), dest: row(2) };
        assert!(m.to_string().contains("migrate"));
        let t = PreventiveAction::TableAccess { row: row(1), write_back: true };
        assert!(t.to_string().contains("writeback"));
    }

    #[test]
    fn sink_roundtrips_every_action_kind() {
        let mut sink = ActionSink::default();
        assert!(sink.is_empty());
        sink.push_refresh_rows([row(1), row(2)]);
        sink.push_refresh_rows(std::iter::empty());
        sink.push_migrate(row(3), row(4));
        sink.push_rfm(row(0).bank);
        sink.push_table_access(row(5), true);
        assert_eq!(sink.len(), 5);
        let views: Vec<ActionView<'_>> = sink.iter().collect();
        assert_eq!(views[0], ActionView::RefreshRows(&[row(1), row(2)]));
        assert_eq!(views[1], ActionView::RefreshRows(&[]));
        assert_eq!(
            sink.to_actions(),
            vec![
                PreventiveAction::RefreshRows(vec![row(1), row(2)]),
                PreventiveAction::RefreshRows(vec![]),
                PreventiveAction::MigrateRow { source: row(3), dest: row(4) },
                PreventiveAction::IssueRfm { bank: row(0).bank },
                PreventiveAction::TableAccess { row: row(5), write_back: true },
            ]
        );
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.to_actions(), vec![]);
    }

    #[test]
    fn attribution_variants() {
        let p = ScoreAttribution::ProportionalToActivations;
        let q = ScoreAttribution::PerActivationQuota { quota: 128 };
        assert_ne!(p, q);
        if let ScoreAttribution::PerActivationQuota { quota } = q {
            assert_eq!(quota, 128);
        } else {
            panic!("wrong variant");
        }
    }
}
