//! Shared experiment machinery used by every figure/table binary.
//!
//! Each binary in `src/bin/` builds a [`Campaign`] (the workload mixes plus a
//! shared alone-IPC cache), runs the configurations its figure needs, and
//! prints the resulting series both as an aligned text table and as CSV.
//!
//! The experiment scale (instruction budget, number of mixes per class, the
//! `N_RH` sweep) defaults to a laptop-friendly "quick" configuration and can
//! be grown towards the paper's scale through environment variables:
//!
//! | Variable | Meaning | Quick default |
//! |---|---|---|
//! | `BH_INSTRUCTIONS` | instructions each benign core retires | 120 000 |
//! | `BH_MIXES_PER_CLASS` | workloads per mix class (paper: 15) | 1 |
//! | `BH_TRACE_ENTRIES` | trace records per benign application | 20 000 |
//! | `BH_ATTACKER_ENTRIES` | trace records for the attacker | 8 000 |
//! | `BH_NRH_LIST` | comma-separated `N_RH` sweep | `4096,1024,256,64` |
//! | `BH_SEED` | workload-generation seed | 42 |
//! | `BH_THREADS` | worker threads for parallel runs | all cores |
//! | `BH_WORKERS` | preferred alias for `BH_THREADS` (wins when both are set) | all cores |
//! | `BH_CHANNELS` | memory channels (sharded memory system) | 1 |
//! | `BH_SCENARIOS` | comma-separated attack scenarios (`all` = catalog) | none |
//! | `BH_FAULT_MODEL` | `threshold` or `probabilistic` bit-flip model | `threshold` |
//! | `BH_FLIP_PROBABILITY` | per-crossing flip probability (probabilistic model) | 0.5 |
//! | `BH_NRH_VARIATION` | per-row `N_RH` variation half-width (probabilistic model) | 0.1 |
//! | `BH_ECC` | ECC scheme classifying flips: `none` or `secded` | `none` |
//! | `BH_WATCHDOG_EPOCH_CYCLES` | watchdog epoch length (0 = auto-derive) | 0 |
//! | `BH_WATCHDOG_STALL_EPOCHS` | zero-progress epochs before a livelock verdict | 8 |
//! | `BH_WATCHDOG_MAX_EPOCHS` | per-run epoch budget (0 = unlimited) | 0 |
//! | `BH_WATCHDOG_MAX_PREVENTIVE` | per-run preventive-action budget (0 = unlimited) | 0 |
//!
//! Set-but-unparseable variables (garbage, `0` where a positive count is
//! required) fall back to their defaults with a one-time warning on stderr
//! naming the variable and the fallback used.

use bh_dram::{EccMode, FaultConfig, FaultModel};
use bh_mitigation::MechanismKind;
use bh_sim::{Evaluator, MixEvaluation, SystemConfig, TerminationReason, WatchdogConfig};
use bh_stats::Table;
use bh_workloads::{
    scenario_by_name, scenario_catalog, MixBuilder, MixClass, TraceGenerator, WorkloadMix,
};
use std::collections::BTreeMap;

/// Experiment scale knobs (see the module documentation for the environment
/// variables that override them).
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Instructions each benign core must retire.
    pub instructions_per_core: u64,
    /// Number of workloads generated per mix class (the paper uses 15).
    pub mixes_per_class: usize,
    /// Trace records generated per benign application.
    pub benign_entries: usize,
    /// Trace records generated for the attacker.
    pub attacker_entries: usize,
    /// RowHammer thresholds swept by the scaling figures.
    pub nrh_values: Vec<u64>,
    /// Workload-generation seed.
    pub seed: u64,
    /// Worker threads used to evaluate mixes in parallel.
    pub worker_threads: usize,
    /// Memory channels in the simulated system (1 = the paper's Table 1
    /// system; more shard the memory system into per-channel controllers and
    /// mitigation instances with one shared BreakHammer).
    pub channels: usize,
    /// Attack-scenario names from the composable-attacker catalog swept in
    /// addition to the classic attack mixes (empty = classic attacker only;
    /// `BH_SCENARIOS=all` selects the whole catalog).
    pub scenarios: Vec<String>,
    /// The fault-injection model and ECC scheme applied to every
    /// configuration of the sweep (`BH_FAULT_MODEL`, `BH_FLIP_PROBABILITY`,
    /// `BH_NRH_VARIATION`, `BH_ECC`); the default is the legacy hard
    /// threshold with no ECC.
    pub fault: FaultConfig,
    /// Forward-progress watchdog and per-run budgets applied to every
    /// configuration of the sweep (`BH_WATCHDOG_EPOCH_CYCLES`,
    /// `BH_WATCHDOG_STALL_EPOCHS`, `BH_WATCHDOG_MAX_EPOCHS`,
    /// `BH_WATCHDOG_MAX_PREVENTIVE`); the default keeps the watchdog on with
    /// auto-derived epochs and no budgets.
    pub watchdog: WatchdogConfig,
}

impl Scale {
    /// The laptop-friendly default scale.
    pub fn quick() -> Self {
        Scale {
            instructions_per_core: 60_000,
            mixes_per_class: 1,
            benign_entries: 20_000,
            attacker_entries: 8_000,
            nrh_values: vec![4096, 1024, 256, 64],
            seed: 42,
            worker_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            channels: 1,
            scenarios: Vec::new(),
            fault: FaultConfig::default(),
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Reads the scale from the environment, falling back to
    /// [`Scale::quick`] for anything unspecified. Set-but-unparseable
    /// variables fall back too, with a one-time warning on stderr naming the
    /// variable and the fallback used.
    pub fn from_env() -> Self {
        // Every name `from_lookup_with_warnings` asks for is a registered
        // knob; routing the lookup through `bh_core::knobs::raw` keeps the
        // registry honest (debug builds assert registration).
        let (scale, warnings) = Scale::from_lookup_with_warnings(bh_core::knobs::raw);
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            for warning in &warnings {
                eprintln!("warning: {warning}");
            }
        });
        scale
    }

    /// Reads the scale from an arbitrary variable lookup (the injection point
    /// the tests use: mutating real process environment variables under a
    /// parallel test runner races against every other test reading them),
    /// discarding parse warnings.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        Scale::from_lookup_with_warnings(lookup).0
    }

    /// Reads the scale from an arbitrary variable lookup, returning the scale
    /// plus one warning per variable that was set but could not be used as
    /// given (garbage, or `0` where a positive count is required). Each
    /// warning names the variable and the fallback applied.
    pub fn from_lookup_with_warnings(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> (Self, Vec<String>) {
        let mut scale = Scale::quick();
        let mut warnings: Vec<String> = Vec::new();
        // A positive count: garbage and 0 both fall back (with a warning).
        let mut count = |name: &str, fallback: u64| -> Option<u64> {
            let raw = lookup(name)?;
            match raw.trim().parse::<u64>() {
                Ok(0) => {
                    warnings.push(format!("{name}=0 is not a positive count; using {fallback}"));
                    None
                }
                Ok(v) => Some(v),
                Err(_) => {
                    warnings.push(format!("{name}={raw:?} is not a number; using {fallback}"));
                    None
                }
            }
        };
        if let Some(v) = count("BH_INSTRUCTIONS", scale.instructions_per_core) {
            scale.instructions_per_core = v;
        }
        if let Some(v) = count("BH_MIXES_PER_CLASS", scale.mixes_per_class as u64) {
            scale.mixes_per_class = v as usize;
        }
        if let Some(v) = count("BH_TRACE_ENTRIES", scale.benign_entries as u64) {
            scale.benign_entries = (v as usize).max(100);
        }
        if let Some(v) = count("BH_ATTACKER_ENTRIES", scale.attacker_entries as u64) {
            scale.attacker_entries = (v as usize).max(100);
        }
        if let Some(v) = count("BH_THREADS", scale.worker_threads as u64) {
            scale.worker_threads = v as usize;
        }
        // `BH_WORKERS` is the preferred spelling (it matches the campaign
        // CLI's terminology); it wins over the legacy `BH_THREADS`.
        if let Some(v) = count("BH_WORKERS", scale.worker_threads as u64) {
            scale.worker_threads = v as usize;
        }
        if let Some(v) = count("BH_CHANNELS", scale.channels as u64) {
            scale.channels = v as usize;
        }
        // Zero stall epochs would disable the livelock detectors outright;
        // turning the watchdog off has an explicit switch instead.
        if let Some(v) = count("BH_WATCHDOG_STALL_EPOCHS", u64::from(scale.watchdog.stall_epochs)) {
            scale.watchdog.stall_epochs = v.min(u64::from(u32::MAX)) as u32;
        }
        // The seed is any u64 (0 included); only garbage warns.
        if let Some(raw) = lookup("BH_SEED") {
            match raw.trim().parse::<u64>() {
                Ok(v) => scale.seed = v,
                Err(_) => {
                    warnings.push(format!("BH_SEED={raw:?} is not a number; using {}", scale.seed))
                }
            }
        }
        // The watchdog cycle knobs accept 0 (auto epoch length / unlimited
        // budget), so only garbage warns.
        {
            let targets: [(&str, &mut u64); 3] = [
                ("BH_WATCHDOG_EPOCH_CYCLES", &mut scale.watchdog.epoch_cycles),
                ("BH_WATCHDOG_MAX_EPOCHS", &mut scale.watchdog.max_epochs),
                ("BH_WATCHDOG_MAX_PREVENTIVE", &mut scale.watchdog.max_preventive_actions),
            ];
            for (name, slot) in targets {
                let Some(raw) = lookup(name) else { continue };
                match raw.trim().parse::<u64>() {
                    Ok(v) => *slot = v,
                    Err(_) => {
                        warnings.push(format!("{name}={raw:?} is not a number; using {}", *slot))
                    }
                }
            }
        }
        if let Some(list) = lookup("BH_NRH_LIST") {
            let parsed: Vec<u64> =
                list.split(',').filter_map(|s| s.trim().parse::<u64>().ok()).collect();
            if parsed.is_empty() {
                warnings.push(format!(
                    "BH_NRH_LIST={list:?} has no parseable thresholds; using {:?}",
                    scale.nrh_values
                ));
            } else {
                scale.nrh_values = parsed;
            }
        }
        if let Some(list) = lookup("BH_SCENARIOS") {
            if list.trim() == "all" {
                scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
            } else {
                scale.scenarios = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if scale.scenarios.is_empty() {
                    warnings.push(format!(
                        "BH_SCENARIOS={list:?} names no scenarios; sweeping the classic \
                         attacker only"
                    ));
                }
            }
        }
        // The fault-model axis. Probabilities parse independently of the
        // model selector so a later `BH_FAULT_MODEL=probabilistic` run can
        // reuse the same environment.
        let mut unit = |name: &str, fallback: f64| -> f64 {
            let Some(raw) = lookup(name) else { return fallback };
            match raw.trim().parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => v,
                _ => {
                    warnings.push(format!(
                        "{name}={raw:?} is not a probability in [0, 1]; using {fallback}"
                    ));
                    fallback
                }
            }
        };
        let flip_probability = unit("BH_FLIP_PROBABILITY", 0.5);
        let nrh_variation = unit("BH_NRH_VARIATION", 0.1).min(0.999);
        if let Some(raw) = lookup("BH_FAULT_MODEL") {
            match raw.trim().to_ascii_lowercase().as_str() {
                "threshold" => scale.fault.model = FaultModel::Threshold,
                "probabilistic" => {
                    scale.fault.model =
                        FaultModel::Probabilistic { flip_probability, nrh_variation }
                }
                _ => warnings.push(format!(
                    "BH_FAULT_MODEL={raw:?} is neither \"threshold\" nor \"probabilistic\"; \
                     using the hard threshold"
                )),
            }
        }
        if let Some(raw) = lookup("BH_ECC") {
            match raw.trim().to_ascii_lowercase().as_str() {
                "none" => scale.fault.ecc = EccMode::None,
                "secded" => scale.fault.ecc = EccMode::SecDed,
                _ => warnings.push(format!(
                    "BH_ECC={raw:?} is neither \"none\" nor \"secded\"; running without ECC"
                )),
            }
        }
        (scale, warnings)
    }

    /// The full seven-point `N_RH` sweep of the paper (4K → 64).
    pub fn paper_nrh_sweep() -> Vec<u64> {
        vec![4096, 2048, 1024, 512, 256, 128, 64]
    }
}

/// One evaluated (configuration, mix) pair, flattened for aggregation.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Mitigation mechanism.
    pub mechanism: MechanismKind,
    /// RowHammer threshold.
    pub nrh: u64,
    /// Whether BreakHammer was attached.
    pub breakhammer: bool,
    /// Mix class label (e.g. `"HHHA"`).
    pub mix_class: String,
    /// Mix instance name.
    pub mix_name: String,
    /// Weighted speedup over the benign applications.
    pub weighted_speedup: f64,
    /// Maximum slowdown of a benign application.
    pub max_slowdown: f64,
    /// DRAM energy in nanojoules.
    pub energy_nj: f64,
    /// RowHammer-preventive actions performed.
    pub preventive_actions: u64,
    /// Benign-application memory-latency percentiles in nanoseconds
    /// (p50, p90, p99).
    pub latency_ns: [f64; 3],
    /// True if the attacker thread was identified as a suspect.
    pub attacker_identified: bool,
    /// True if any benign thread was identified as a suspect.
    pub benign_misidentified: bool,
    /// Would-be RowHammer bitflips (must be 0 for deterministic mechanisms).
    pub bitflips: usize,
    /// Attack-scenario tag of the mix (`None` for the classic attacker and
    /// for benign mixes).
    pub scenario: Option<String>,
    /// Largest end-of-run disturbance of any watched victim row (0 when the
    /// mix declared no victims).
    pub max_victim_disturbance: u64,
    /// Raw bit-flips before ECC (the fault model's output; 0 under the
    /// default hard-threshold model whenever `bitflips` is 0).
    pub flips_raw: u64,
    /// Flips corrected by ECC.
    pub flips_corrected: u64,
    /// Flips detected but not corrected (machine-check events).
    pub flips_detected: u64,
    /// Flips that escaped ECC silently.
    pub flips_silent: u64,
    /// Whether the run satisfied the mix's attack-success criterion.
    pub attack_success: bool,
    /// How the run ended: completed, cut off, livelocked, or out of budget.
    pub termination: TerminationReason,
    /// Rendered livelock diagnostic snapshot (`None` unless `termination`
    /// is [`TerminationReason::Livelock`]).
    pub livelock: Option<String>,
}

impl RunRecord {
    fn from_eval(config: &SystemConfig, mix: &WorkloadMix, eval: &MixEvaluation) -> Self {
        let benign = mix.benign_threads();
        let hist = eval.result.merged_latency(&benign);
        let to_ns = |cycles: u64| config.timing.cycles_to_ns(cycles);
        let attacker_identified =
            mix.attacker_thread.map(|t| eval.result.ever_suspect[t]).unwrap_or(false);
        let benign_misidentified = benign.iter().any(|t| eval.result.ever_suspect[*t]);
        RunRecord {
            mechanism: config.mechanism,
            nrh: config.nrh,
            breakhammer: config.breakhammer,
            mix_class: mix.class.label(),
            mix_name: mix.name.clone(),
            weighted_speedup: eval.weighted_speedup,
            max_slowdown: eval.max_slowdown,
            energy_nj: eval.result.energy_nj,
            preventive_actions: eval.result.preventive_actions,
            latency_ns: [
                to_ns(hist.percentile(50.0)),
                to_ns(hist.percentile(90.0)),
                to_ns(hist.percentile(99.0)),
            ],
            attacker_identified,
            benign_misidentified,
            bitflips: eval.result.bitflips,
            scenario: mix.scenario.clone(),
            max_victim_disturbance: eval.result.max_victim_disturbance(),
            flips_raw: eval.result.outcome.flips_raw,
            flips_corrected: eval.result.outcome.corrected,
            flips_detected: eval.result.outcome.detected,
            flips_silent: eval.result.outcome.silent,
            attack_success: eval.result.outcome.attack_success,
            termination: eval.result.termination,
            livelock: eval.result.livelock.as_ref().map(|report| report.to_string()),
        }
    }

    /// Short configuration label used in tables, e.g. `"Graphene+BH"`.
    pub fn config_label(&self) -> String {
        if self.breakhammer {
            format!("{}+BH", self.mechanism)
        } else {
            self.mechanism.to_string()
        }
    }
}

/// Builds the paper's Table 1 system configuration at the given experiment
/// scale.
pub fn paper_config(
    mechanism: MechanismKind,
    nrh: u64,
    breakhammer: bool,
    scale: &Scale,
) -> SystemConfig {
    let mut config =
        SystemConfig::paper_table1(mechanism, nrh, breakhammer).with_channels(scale.channels);
    config.instructions_per_core = scale.instructions_per_core;
    config.seed = scale.seed;
    config.fault = scale.fault;
    config.watchdog = scale.watchdog;
    // Bound the worst case (e.g. AQUA at N_RH=64 under attack, without
    // BreakHammer): runs that exceed ~400 DRAM cycles per target instruction
    // are cut off; IPCs measured up to the cut-off remain valid samples.
    config.max_dram_cycles = scale.instructions_per_core.saturating_mul(400).max(5_000_000);
    config
}

/// A campaign holds the generated workload mixes and the shared alone-IPC
/// cache, and evaluates configurations against them (in parallel).
#[derive(Debug)]
pub struct Campaign {
    scale: Scale,
    attack_mixes: Vec<WorkloadMix>,
    benign_mixes: Vec<WorkloadMix>,
    /// Mixes carrying the composable-attacker scenarios of
    /// [`Scale::scenarios`] (appended to `attack_mixes` in attack sweeps).
    scenario_mixes: Vec<WorkloadMix>,
    alone_cache: BTreeMap<String, f64>,
}

impl Campaign {
    /// Generates the attack, benign and scenario mix suites for `scale`.
    ///
    /// # Panics
    /// Panics (listing the catalog) if `scale.scenarios` names an unknown
    /// attack scenario.
    pub fn new(scale: Scale) -> Self {
        let generator = TraceGenerator::new(
            bh_dram::DramGeometry::paper_ddr5().with_channels(scale.channels),
            bh_mem::AddressMapping::paper_default(),
        );
        let mut builder = MixBuilder::new(generator);
        builder.benign_entries = scale.benign_entries;
        builder.attacker_entries = scale.attacker_entries;
        let attack_mixes =
            builder.build_suite(&MixClass::attack_classes(), scale.mixes_per_class, scale.seed);
        let benign_mixes =
            builder.build_suite(&MixClass::benign_classes(), scale.mixes_per_class, scale.seed);
        // Scenario sweeps hold the benign company fixed (the HHHA class) so
        // differences between scenarios isolate the attacker's shape.
        let scenario_class = MixClass::attack_classes()[0];
        let mut scenario_mixes = Vec::new();
        for name in &scale.scenarios {
            let scenario = scenario_by_name(name).unwrap_or_else(|e| panic!("{e}"));
            let scenario_builder = builder.clone().with_scenario(&scenario);
            for index in 0..scale.mixes_per_class {
                scenario_mixes.push(scenario_builder.build(scenario_class, index, scale.seed));
            }
        }
        Campaign { scale, attack_mixes, benign_mixes, scenario_mixes, alone_cache: BTreeMap::new() }
    }

    /// The experiment scale in use.
    pub fn scale(&self) -> &Scale {
        &self.scale
    }

    /// The attack mixes (HHHA … LLLA).
    pub fn attack_mixes(&self) -> &[WorkloadMix] {
        &self.attack_mixes
    }

    /// The benign mixes (HHHH … LLLL).
    pub fn benign_mixes(&self) -> &[WorkloadMix] {
        &self.benign_mixes
    }

    /// The composable-attacker scenario mixes (one suite per entry of
    /// [`Scale::scenarios`]).
    pub fn scenario_mixes(&self) -> &[WorkloadMix] {
        &self.scenario_mixes
    }

    /// The mixes an attack (or benign) sweep evaluates: attack sweeps cover
    /// the classic attack suite plus every requested scenario suite. Cloning
    /// a mix bumps trace reference counts, it does not copy records.
    pub fn sweep_mixes(&self, attack: bool) -> Vec<WorkloadMix> {
        self.mixes(attack)
    }

    fn mixes(&self, attack: bool) -> Vec<WorkloadMix> {
        if attack {
            self.attack_mixes.iter().chain(self.scenario_mixes.iter()).cloned().collect()
        } else {
            self.benign_mixes.to_vec()
        }
    }

    /// Warms (once) and returns the shared alone-IPC cache covering every
    /// application of every mix suite. Alone baselines are measured on the
    /// unprotected system, so one cache serves every configuration of a
    /// sweep.
    pub fn warmed_alone_cache(&mut self) -> &BTreeMap<String, f64> {
        self.warm_alone_cache();
        &self.alone_cache
    }

    /// Ensures the alone-IPC cache covers every application of every mix.
    fn warm_alone_cache(&mut self) {
        if !self.alone_cache.is_empty() {
            return;
        }
        let config = paper_config(MechanismKind::None, 4096, false, &self.scale);
        let mut evaluator = Evaluator::new(config);
        for mix in self
            .attack_mixes
            .iter()
            .chain(self.benign_mixes.iter())
            .chain(self.scenario_mixes.iter())
        {
            evaluator.warm_alone_cache(mix);
        }
        self.alone_cache = evaluator.alone_cache().clone();
    }

    /// Evaluates one configuration against the attack or benign mix suite,
    /// running mixes in parallel, and returns one record per mix.
    pub fn run(&mut self, config: &SystemConfig, attack: bool) -> Vec<RunRecord> {
        self.run_configs(std::slice::from_ref(config), attack)
    }

    /// Runs a full (mechanism × N_RH × ±BreakHammer) matrix over the chosen
    /// mix suite, parallelizing over the *flattened* (configuration × mix)
    /// grid so short sweeps (few mixes per class) still keep every worker
    /// busy instead of serializing on one configuration at a time.
    pub fn run_matrix(
        &mut self,
        mechanisms: &[MechanismKind],
        nrh_values: &[u64],
        breakhammer_options: &[bool],
        attack: bool,
    ) -> Vec<RunRecord> {
        let scale = self.scale.clone();
        let mut configs = Vec::new();
        for &mechanism in mechanisms {
            for &nrh in nrh_values {
                for &bh in breakhammer_options {
                    if mechanism == MechanismKind::None && bh {
                        continue; // BreakHammer needs a mechanism to observe.
                    }
                    configs.push(paper_config(mechanism, nrh, bh, &scale));
                }
            }
        }
        self.run_configs(&configs, attack)
    }

    /// Evaluates every (configuration, mix) pair of `configs` × the chosen
    /// suite with a shared worker pool, returning records grouped by
    /// configuration (in `configs` order) and, within each configuration, in
    /// mix order — the same order the former config-serial loop produced.
    fn run_configs(&mut self, configs: &[SystemConfig], attack: bool) -> Vec<RunRecord> {
        self.warm_alone_cache();
        let mixes = self.mixes(attack);
        let jobs: Vec<(usize, usize)> =
            (0..configs.len()).flat_map(|c| (0..mixes.len()).map(move |m| (c, m))).collect();
        let results = evaluate_jobs(
            configs,
            &mixes,
            &jobs,
            &self.alone_cache,
            self.scale.worker_threads,
            &EvalHooks::none(),
        );
        // Figure binaries want every cell: a panicking cell no longer kills
        // the other workers mid-sweep, but an incomplete matrix must still
        // fail loudly once everything else has finished.
        let mut records = Vec::with_capacity(results.len());
        let mut failed = Vec::new();
        for (i, result) in results.into_iter().enumerate() {
            let (c, m) = jobs[i];
            match result {
                Ok(record) => records.push(record),
                Err(error) => {
                    failed.push(format!("[{} × {}] {error}", configs[c].summary(), mixes[m].name))
                }
            }
        }
        assert!(
            failed.is_empty(),
            "{} campaign cell(s) panicked:\n{}",
            failed.len(),
            failed.join("\n")
        );
        records
    }
}

/// Fault-injection and observation hooks threaded through [`evaluate_jobs`].
///
/// The two `force_*` patterns are the test hooks behind the campaign CLI's
/// `BH_TEST_FORCE_PANIC_MIX` / `BH_TEST_FORCE_SPIN_MIX` environment knobs;
/// the two callbacks fire on the worker threads (claiming a job, finishing a
/// cell) and are how the campaign engine streams checkpoints and feeds its
/// wall-clock overseer. Plain sweeps use [`EvalHooks::none`].
pub struct EvalHooks<'a> {
    /// Cells whose mix name contains this pattern panic before evaluating,
    /// exercising the sweep's panic-isolation path end to end.
    pub force_panic_mix: Option<&'a str>,
    /// Cells whose mix name contains this pattern evaluate under an injected
    /// livelock (`ChaosConfig::drop_fills_after` plus a tight watchdog), so
    /// the run ends with a deterministic `Livelock` verdict. Only the
    /// evaluated configuration is mutated — cell identity stays that of the
    /// base configuration.
    pub force_spin_mix: Option<&'a str>,
    /// Fires on the worker thread when it claims job `i`, before evaluation.
    pub on_claim: &'a (dyn Fn(usize) + Sync),
    /// Fires on the worker thread as soon as cell `i` completes or panics.
    pub on_record: &'a (dyn Fn(usize, Result<&RunRecord, &str>) + Sync),
}

impl EvalHooks<'_> {
    /// No fault injection, no observers — the plain-sweep default.
    pub fn none() -> EvalHooks<'static> {
        EvalHooks {
            force_panic_mix: None,
            force_spin_mix: None,
            on_claim: &|_| {},
            on_record: &|_, _| {},
        }
    }
}

impl std::fmt::Debug for EvalHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalHooks")
            .field("force_panic_mix", &self.force_panic_mix)
            .field("force_spin_mix", &self.force_spin_mix)
            .finish_non_exhaustive()
    }
}

/// Evaluates a set of `(config index, mix index)` jobs with a pool of
/// `workers` threads pulling from a shared work-stealing counter, and returns
/// one [`RunRecord`] per job, in `jobs` order.
///
/// Each worker keeps its completed records in a thread-local vector (tagged
/// with the job index) that is stitched into the result after the scope
/// joins — there is no shared result lock on the hot path. Workers also reuse
/// one [`Evaluator`] across consecutive jobs, switching its configuration
/// only when the claimed job's config index changes (the alone-IPC cache is
/// configuration-independent, see [`Evaluator::set_config`]); since jobs are
/// flattened configuration-major, a worker claiming consecutive indices
/// rarely pays the switch.
///
/// `hooks` carries the fault-injection patterns and the per-cell callbacks
/// (see [`EvalHooks`]).
///
/// Every cell runs under [`std::panic::catch_unwind`], so one panicking
/// (configuration, mix) pair costs exactly that cell: its slot comes back as
/// `Err(panic message)`, the worker discards its (possibly inconsistent)
/// evaluator and rebuilds on the next claimed job, and every other cell still
/// completes.
pub fn evaluate_jobs(
    configs: &[SystemConfig],
    mixes: &[WorkloadMix],
    jobs: &[(usize, usize)],
    alone_cache: &BTreeMap<String, f64>,
    workers: usize,
    hooks: &EvalHooks<'_>,
) -> Vec<Result<RunRecord, String>> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);

    let worker_outputs: Vec<Vec<(usize, Result<RunRecord, String>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Result<RunRecord, String>)> = Vec::new();
                        let mut evaluator: Option<Evaluator> = None;
                        let mut current_config = usize::MAX;
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let (c, m) = jobs[i];
                            (hooks.on_claim)(i);
                            let cell =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if let Some(pattern) = hooks.force_panic_mix {
                                        assert!(
                                            !mixes[m].name.contains(pattern),
                                            "forced test panic for mix {}",
                                            mixes[m].name
                                        );
                                    }
                                    let spin = hooks
                                        .force_spin_mix
                                        .is_some_and(|p| mixes[m].name.contains(p));
                                    if current_config != c || spin {
                                        let mut config = configs[c].clone();
                                        if spin {
                                            // Injected livelock: fills stop
                                            // completing shortly into the run
                                            // and a tight watchdog classifies
                                            // the cell within a few epochs.
                                            config.chaos.drop_fills_after = Some(1_000);
                                            config.watchdog.enabled = true;
                                            config.watchdog.epoch_cycles = 5_000;
                                            config.watchdog.stall_epochs = 4;
                                        }
                                        match &mut evaluator {
                                            Some(ev) => ev.set_config(config),
                                            None => {
                                                evaluator = Some(
                                                    Evaluator::new(config)
                                                        .with_alone_cache(alone_cache.clone()),
                                                )
                                            }
                                        }
                                        // A spin cell leaves the evaluator on
                                        // the mutated configuration; force the
                                        // next claim to reset it.
                                        current_config = if spin { usize::MAX } else { c };
                                    }
                                    let ev =
                                        evaluator.as_mut().expect("evaluator initialised above");
                                    let eval = ev.evaluate(&mixes[m]);
                                    RunRecord::from_eval(&configs[c], &mixes[m], &eval)
                                }));
                            match cell {
                                Ok(record) => {
                                    (hooks.on_record)(i, Ok(&record));
                                    local.push((i, Ok(record)));
                                }
                                Err(payload) => {
                                    // The evaluator may hold a half-updated
                                    // alone cache or configuration; rebuild it
                                    // before the next cell.
                                    evaluator = None;
                                    current_config = usize::MAX;
                                    let message = payload
                                        .downcast_ref::<String>()
                                        .cloned()
                                        .or_else(|| {
                                            payload.downcast_ref::<&str>().map(|s| s.to_string())
                                        })
                                        .unwrap_or_else(|| "unknown panic payload".to_string());
                                    (hooks.on_record)(i, Err(&message));
                                    local.push((i, Err(message)));
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("evaluation worker panicked")).collect()
        });

    let mut slots: Vec<Option<Result<RunRecord, String>>> = vec![None; jobs.len()];
    for (i, outcome) in worker_outputs.into_iter().flatten() {
        slots[i] = Some(outcome);
    }
    slots.into_iter().map(|slot| slot.expect("every job was evaluated")).collect()
}

// --- aggregation helpers ----------------------------------------------------

/// Selects the records matching a configuration.
pub fn select(
    records: &[RunRecord],
    mechanism: MechanismKind,
    nrh: u64,
    breakhammer: bool,
) -> Vec<&RunRecord> {
    records
        .iter()
        .filter(|r| r.mechanism == mechanism && r.nrh == nrh && r.breakhammer == breakhammer)
        .collect()
}

/// Restricts a record selection to one mix class; the pseudo-class
/// `"geomean"` keeps every record (used for the aggregate columns of
/// Figs. 6, 7, 13 and 14).
pub fn filter_class<'a>(set: &[&'a RunRecord], class: &str) -> Vec<&'a RunRecord> {
    if class == "geomean" {
        set.to_vec()
    } else {
        set.iter().copied().filter(|r| r.mix_class == class).collect()
    }
}

/// Geometric mean of the weighted speedups of a record selection.
///
/// # Panics
/// Panics if the selection is empty.
pub fn geomean_speedup(records: &[&RunRecord]) -> f64 {
    let values: Vec<f64> = records.iter().map(|r| r.weighted_speedup).collect();
    bh_stats::geometric_mean(&values)
}

/// Arithmetic mean of a projection over a record selection.
///
/// # Panics
/// Panics if the selection is empty.
pub fn mean_of(records: &[&RunRecord], f: impl Fn(&RunRecord) -> f64) -> f64 {
    assert!(!records.is_empty(), "cannot aggregate an empty selection");
    records.iter().map(|r| f(r)).sum::<f64>() / records.len() as f64
}

/// Prints a table as text and CSV, under a heading, and returns the CSV (for
/// tests).
pub fn print_results(title: &str, table: &Table) -> String {
    println!("=== {title} ===");
    println!("{}", table.to_text());
    println!("--- CSV ---");
    let csv = table.to_csv();
    println!("{csv}");
    csv
}

/// The RowHammer threshold used by the fixed-threshold figures (6, 7 and 14):
/// the paper evaluates them at N_RH = 1K; override with `BH_FIG_NRH` when
/// running at a reduced scale, where the per-row thresholds of N_RH = 1K are
/// not reachable within the shortened simulations.
pub fn figure_nrh(default: u64) -> u64 {
    bh_core::knobs::u64_value("BH_FIG_NRH", "the figure's threshold").unwrap_or(default)
}

/// Prints the Table 1 / Table 2 configuration summary when `--print-config`
/// is among the command-line arguments.
pub fn maybe_print_config(scale: &Scale) {
    if std::env::args().any(|a| a == "--print-config") {
        let config = paper_config(MechanismKind::Graphene, 1024, true, scale);
        println!("System configuration (Table 1): {}", config.summary());
        println!("{:#?}", config.memctrl);
        println!("{:#?}", config.cache);
        println!(
            "BreakHammer configuration (Table 2): {:#?}",
            config.effective_breakhammer_config()
        );
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_types)] // test-only hash collections: assertion sets and reference models, never digest-bearing
mod tests {
    use super::*;

    #[test]
    fn scale_lookup_overrides_are_applied() {
        // `from_lookup` is the injection point: mutating real environment
        // variables under the parallel test runner would race against every
        // other test that reads the scale.
        let vars: std::collections::HashMap<&str, &str> = [
            ("BH_INSTRUCTIONS", "5000"),
            ("BH_NRH_LIST", "128, 64"),
            ("BH_MIXES_PER_CLASS", "2"),
            ("BH_ATTACKER_ENTRIES", "1234"),
        ]
        .into_iter()
        .collect();
        let scale = Scale::from_lookup(|name| vars.get(name).map(|v| v.to_string()));
        assert_eq!(scale.instructions_per_core, 5000);
        assert_eq!(scale.nrh_values, vec![128, 64]);
        assert_eq!(scale.mixes_per_class, 2);
        assert_eq!(scale.attacker_entries, 1234);
        // Unset variables keep their quick defaults.
        assert_eq!(scale.benign_entries, Scale::quick().benign_entries);
        assert!(scale.scenarios.is_empty(), "scenarios default to none");
    }

    #[test]
    fn bh_workers_wins_over_legacy_bh_threads() {
        let both = Scale::from_lookup(|name| match name {
            "BH_THREADS" => Some("3".to_string()),
            "BH_WORKERS" => Some("7".to_string()),
            _ => None,
        });
        assert_eq!(both.worker_threads, 7);
        let legacy = Scale::from_lookup(|name| (name == "BH_THREADS").then(|| "3".to_string()));
        assert_eq!(legacy.worker_threads, 3);
        let preferred = Scale::from_lookup(|name| (name == "BH_WORKERS").then(|| "5".to_string()));
        assert_eq!(preferred.worker_threads, 5);
    }

    #[test]
    fn scenario_lookup_accepts_names_and_the_all_keyword() {
        let named = Scale::from_lookup(|name| {
            (name == "BH_SCENARIOS").then(|| "fuzz-nbr, press-nbr".to_string())
        });
        assert_eq!(named.scenarios, vec!["fuzz-nbr", "press-nbr"]);
        let all = Scale::from_lookup(|name| (name == "BH_SCENARIOS").then(|| "all".to_string()));
        assert_eq!(
            all.scenarios,
            scenario_catalog().iter().map(|s| s.name.to_string()).collect::<Vec<_>>()
        );
        assert!(all.scenarios.len() >= 4);
    }

    #[test]
    fn unparseable_lookup_values_fall_back_to_defaults() {
        let scale = Scale::from_lookup(|name| {
            (name == "BH_INSTRUCTIONS").then(|| "not-a-number".to_string())
        });
        assert_eq!(scale, Scale::quick());
    }

    #[test]
    fn set_but_unusable_variables_warn_with_the_fallback() {
        let (scale, warnings) = Scale::from_lookup_with_warnings(|name| match name {
            "BH_WORKERS" => Some("banana".to_string()),
            "BH_CHANNELS" => Some("0".to_string()),
            "BH_SCENARIOS" => Some(" , ,".to_string()),
            "BH_FAULT_MODEL" => Some("maybe".to_string()),
            _ => None,
        });
        assert_eq!(scale, Scale::quick(), "every bad value falls back to the default");
        assert_eq!(warnings.len(), 4, "{warnings:?}");
        assert!(warnings.iter().any(|w| w.contains("BH_WORKERS") && w.contains("banana")));
        assert!(warnings.iter().any(|w| w.contains("BH_CHANNELS=0")));
        assert!(warnings.iter().any(|w| w.contains("BH_SCENARIOS")));
        assert!(warnings.iter().any(|w| w.contains("BH_FAULT_MODEL")));
        let (_, clean) = Scale::from_lookup_with_warnings(|_| None);
        assert!(clean.is_empty(), "unset variables must not warn");
    }

    #[test]
    fn watchdog_env_knobs_are_parsed() {
        let (scale, warnings) = Scale::from_lookup_with_warnings(|name| match name {
            "BH_WATCHDOG_EPOCH_CYCLES" => Some("25000".to_string()),
            "BH_WATCHDOG_STALL_EPOCHS" => Some("3".to_string()),
            "BH_WATCHDOG_MAX_EPOCHS" => Some("900".to_string()),
            "BH_WATCHDOG_MAX_PREVENTIVE" => Some("50".to_string()),
            _ => None,
        });
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(scale.watchdog.epoch_cycles, 25_000);
        assert_eq!(scale.watchdog.stall_epochs, 3);
        assert_eq!(scale.watchdog.max_epochs, 900);
        assert_eq!(scale.watchdog.max_preventive_actions, 50);

        // 0 is a meaningful value, not garbage: auto epoch sizing and
        // unlimited budgets.
        let (zeros, zero_warnings) = Scale::from_lookup_with_warnings(|name| {
            name.starts_with("BH_WATCHDOG_").then(|| "0".to_string())
        });
        assert!(zero_warnings.iter().all(|w| !w.contains("BH_WATCHDOG_MAX")), "{zero_warnings:?}");
        assert_eq!(zeros.watchdog.epoch_cycles, 0, "0 = derive from the BreakHammer window");
        assert_eq!(zeros.watchdog.max_epochs, 0, "0 = unlimited");
        assert_eq!(zeros.watchdog.max_preventive_actions, 0, "0 = unlimited");

        let (garbage, garbage_warnings) = Scale::from_lookup_with_warnings(|name| {
            (name == "BH_WATCHDOG_MAX_EPOCHS").then(|| "soon".to_string())
        });
        assert_eq!(garbage.watchdog, Scale::quick().watchdog);
        assert!(
            garbage_warnings.iter().any(|w| w.contains("BH_WATCHDOG_MAX_EPOCHS")),
            "{garbage_warnings:?}"
        );
    }

    #[test]
    fn fault_model_env_knobs_are_parsed() {
        let (scale, warnings) = Scale::from_lookup_with_warnings(|name| match name {
            "BH_FAULT_MODEL" => Some("probabilistic".to_string()),
            "BH_FLIP_PROBABILITY" => Some("0.25".to_string()),
            "BH_NRH_VARIATION" => Some("0.2".to_string()),
            "BH_ECC" => Some("secded".to_string()),
            _ => None,
        });
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(
            scale.fault.model,
            FaultModel::Probabilistic { flip_probability: 0.25, nrh_variation: 0.2 }
        );
        assert_eq!(scale.fault.ecc, EccMode::SecDed);
        // The fault axis reaches the system configuration.
        let config = paper_config(MechanismKind::Graphene, 1024, true, &scale);
        assert_eq!(config.fault, scale.fault);
        assert_eq!(config.validate(), Ok(()));
    }

    #[test]
    fn paper_nrh_sweep_matches_the_figures() {
        assert_eq!(Scale::paper_nrh_sweep(), vec![4096, 2048, 1024, 512, 256, 128, 64]);
    }

    #[test]
    fn campaign_builds_the_requested_mix_suites() {
        let mut scale = Scale::quick();
        scale.mixes_per_class = 2;
        scale.benign_entries = 500;
        scale.attacker_entries = 500;
        let campaign = Campaign::new(scale);
        assert_eq!(campaign.attack_mixes().len(), 12);
        assert_eq!(campaign.benign_mixes().len(), 12);
        assert!(campaign.attack_mixes().iter().all(|m| m.attacker_thread.is_some()));
        assert!(campaign.benign_mixes().iter().all(|m| m.attacker_thread.is_none()));
        assert!(campaign.scenario_mixes().is_empty(), "no scenarios requested");
    }

    #[test]
    fn scenario_suites_join_the_attack_sweep() {
        let mut scale = Scale::quick();
        scale.benign_entries = 500;
        scale.attacker_entries = 500;
        scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
        let campaign = Campaign::new(scale);
        assert_eq!(campaign.scenario_mixes().len(), scenario_catalog().len());
        for (mix, scenario) in campaign.scenario_mixes().iter().zip(scenario_catalog()) {
            assert_eq!(mix.scenario.as_deref(), Some(scenario.name));
            assert!(mix.name.contains(scenario.name), "{}", mix.name);
            assert!(mix.attacker_thread.is_some());
            assert!(!mix.victim_rows.is_empty(), "{}", mix.name);
        }
        let sweep = campaign.mixes(true);
        assert_eq!(sweep.len(), campaign.attack_mixes().len() + campaign.scenario_mixes().len());
        assert_eq!(campaign.mixes(false).len(), campaign.benign_mixes().len());
    }

    #[test]
    #[should_panic(expected = "unknown attack scenario")]
    fn unknown_scenario_names_are_rejected_with_the_catalog() {
        let mut scale = Scale::quick();
        scale.scenarios = vec!["not-a-scenario".to_string()];
        let _ = Campaign::new(scale);
    }

    #[test]
    fn run_matrix_sweeps_scenarios_with_breakhammer_on_and_off() {
        // Tiny scale: this exercises the full scenario path (composed
        // attacker → mix → simulator → per-victim stats) end to end.
        let mut scale = Scale::quick();
        scale.instructions_per_core = 4_000;
        scale.benign_entries = 600;
        scale.attacker_entries = 600;
        scale.scenarios = scenario_catalog().iter().map(|s| s.name.to_string()).collect();
        let mut campaign = Campaign::new(scale);
        let records = campaign.run_matrix(&[MechanismKind::Graphene], &[64], &[false, true], true);
        for bh in [false, true] {
            let scenarios: std::collections::HashSet<&str> = records
                .iter()
                .filter(|r| r.breakhammer == bh)
                .filter_map(|r| r.scenario.as_deref())
                .collect();
            assert!(
                scenarios.len() >= 4,
                "need >= 4 scenarios with breakhammer={bh}, got {scenarios:?}"
            );
        }
        // Scenario records carry per-victim stats; classic records have no
        // scenario tag but still watch the compat attacker's victims.
        assert!(records
            .iter()
            .filter(|r| r.scenario.is_some())
            .any(|r| r.max_victim_disturbance > 0));
    }

    #[test]
    fn record_selection_and_aggregation() {
        let make = |mech, nrh, bh, ws| RunRecord {
            mechanism: mech,
            nrh,
            breakhammer: bh,
            mix_class: "HHHA".to_string(),
            mix_name: "HHHA-00".to_string(),
            weighted_speedup: ws,
            max_slowdown: 2.0,
            energy_nj: 10.0,
            preventive_actions: 5,
            latency_ns: [10.0, 20.0, 30.0],
            attacker_identified: true,
            benign_misidentified: false,
            bitflips: 0,
            scenario: None,
            max_victim_disturbance: 0,
            flips_raw: 0,
            flips_corrected: 0,
            flips_detected: 0,
            flips_silent: 0,
            attack_success: false,
            termination: TerminationReason::Completed,
            livelock: None,
        };
        let records = vec![
            make(MechanismKind::Para, 1024, true, 2.0),
            make(MechanismKind::Para, 1024, true, 8.0),
            make(MechanismKind::Para, 1024, false, 1.0),
            make(MechanismKind::Graphene, 1024, true, 3.0),
        ];
        let sel = select(&records, MechanismKind::Para, 1024, true);
        assert_eq!(sel.len(), 2);
        assert!((geomean_speedup(&sel) - 4.0).abs() < 1e-12);
        assert!((mean_of(&sel, |r| r.max_slowdown) - 2.0).abs() < 1e-12);
        assert_eq!(sel[0].config_label(), "PARA+BH");
        assert_eq!(select(&records, MechanismKind::Para, 1024, false)[0].config_label(), "PARA");
    }
}
