//! D1 negative: integration-test paths are exempt even in pinned crates.
use std::collections::HashMap;

#[test]
fn integration_tests_may_hash() {
    let m: HashMap<u32, u32> = HashMap::new();
    assert!(m.is_empty());
}
