//! Figure 2: system performance overhead of RowHammer mitigation mechanisms
//! (Hydra, RFM, PARA, AQUA) on all-benign four-core workloads as the
//! RowHammer threshold decreases, normalized to a system with no mitigation.

use bh_bench::{
    geomean_speedup, maybe_print_config, paper_config, print_results, select, Campaign, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    // Baseline: no mitigation (independent of N_RH).
    let baseline_cfg = paper_config(MechanismKind::None, scale.nrh_values[0], false, &scale);
    let baseline = campaign.run(&baseline_cfg, false);
    let baseline_ws = geomean_speedup(&baseline.iter().collect::<Vec<_>>());

    let mechanisms = MechanismKind::motivation_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false], /*attack=*/ false);

    let mut table = Table::new(["nrh", "mechanism", "weighted_speedup", "normalized_ws"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            let sel = select(&records, mech, nrh, false);
            let ws = geomean_speedup(&sel);
            table.push_row([nrh.to_string(), mech.to_string(), fmt3(ws), fmt3(ws / baseline_ws)]);
        }
    }
    print_results(
        "Figure 2: normalized weighted speedup of mitigation mechanisms (benign workloads, no BreakHammer)",
        &table,
    );
    println!("baseline (no mitigation) geomean weighted speedup: {}", fmt3(baseline_ws));
}
