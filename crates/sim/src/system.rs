//! The full-system simulator: cores + LLC + memory controller + DRAM +
//! mitigation mechanism + BreakHammer, wired together and clocked.
//!
//! The outer simulation loop runs in the DRAM command-clock domain (one
//! memory-controller tick per iteration); the cores run at the CPU frequency
//! and are ticked `cpu_freq / dram_freq` times per memory cycle using a
//! fractional accumulator, matching Table 1's 4.2 GHz cores over DDR5-4800.
//!
//! Two interchangeable kernels drive the clock (selected by
//! [`SchedulerKind`]): the reference per-cycle kernel executes the loop body
//! at every DRAM cycle, while the event-driven kernel asks each layer for its
//! next-event horizon — the memory controller's earliest issuable command,
//! the earliest pending LLC fill, each core's stall wake-up, BreakHammer's
//! next window edge — and jumps the clock straight to the minimum, replaying
//! the skipped cycles' counter increments in bulk. The two kernels produce
//! bit-identical [`SimulationResult`]s; `tests/scheduler_differential.rs`
//! enforces this differentially.

use crate::config::{SchedulerKind, SystemConfig};
use crate::result::{ChannelBreakdown, CorePerformance, SimulationResult};
use bh_core::BreakHammer;
use bh_cpu::{Core, CoreProgress, LastLevelCache, StallInfo, Trace};
use bh_dram::{Cycle, DramChannel, RowHammerTracker, ThreadId};
use bh_mem::{MemRequest, MemorySystem};
use std::collections::VecDeque;
use std::ops::Range;

/// The CPU/DRAM clock-domain crossing: a fractional accumulator that hands
/// out the CPU-cycle values to tick for each DRAM cycle. Both kernels drive
/// the same accumulator arithmetic, so their clock-domain behaviour is
/// identical by construction.
#[derive(Debug, Clone)]
struct CpuClock {
    /// CPU cycles per DRAM command-clock cycle.
    ratio: f64,
    /// Fractional CPU cycles accumulated but not yet ticked.
    acc: f64,
    /// The CPU-cycle value of the next tick.
    next_cpu_cycle: Cycle,
}

impl CpuClock {
    fn new(ratio: f64) -> Self {
        CpuClock { ratio, acc: 0.0, next_cpu_cycle: 0 }
    }

    /// The CPU-cycle value the next tick will carry.
    fn next_cpu_cycle(&self) -> Cycle {
        self.next_cpu_cycle
    }

    /// Advances the accumulator by one DRAM cycle and returns the range of
    /// CPU-cycle values to tick during it (possibly empty).
    fn tick_range(&mut self) -> Range<Cycle> {
        self.acc += self.ratio;
        let start = self.next_cpu_cycle;
        while self.acc >= 1.0 {
            self.acc -= 1.0;
            self.next_cpu_cycle += 1;
        }
        start..self.next_cpu_cycle
    }

    /// Advances through `dram_cycles` DRAM cycles and returns how many CPU
    /// ticks elapse in total (the event-driven kernel's bulk skip).
    fn advance(&mut self, dram_cycles: u64) -> u64 {
        let mut ticks = 0;
        for _ in 0..dram_cycles {
            let range = self.tick_range();
            ticks += range.end - range.start;
        }
        ticks
    }

    /// Number of DRAM cycles (>= 1) until the DRAM cycle whose tick batch
    /// contains the CPU cycle `target` (which must not have been ticked yet).
    fn dram_cycles_until(&self, target: Cycle) -> u64 {
        let mut probe = self.clone();
        let mut cycles = 0u64;
        loop {
            cycles += 1;
            if probe.tick_range().end > target {
                return cycles;
            }
        }
    }
}

/// A fully-wired simulated system.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    cores: Vec<Core>,
    llc: LastLevelCache,
    /// The sharded memory system: one controller + mitigation instance per
    /// channel, one shared BreakHammer observer.
    memory: MemorySystem,
    /// Cores that must finish for the simulation to end (benign cores; the
    /// attacker's progress is irrelevant, footnote 9 of the paper).
    required: Vec<usize>,
    /// Miss completions scheduled for a future DRAM cycle.
    pending_fills: VecDeque<(Cycle, u64)>,
    /// Cached minimum completion cycle in `pending_fills` (`Cycle::MAX` when
    /// empty): the per-step completion walk and the next-event fill horizon
    /// both skip the deque entirely while nothing is due.
    pending_fills_min: Cycle,
    next_writeback_id: u64,
    /// Per-core hard-stall token: while `Some`, the core's instruction
    /// window is full with this incomplete miss at its head, so its ticks
    /// are deferred into `core_stall_debt` instead of being executed (fills
    /// complete strictly before the core phase of a step, so the token's
    /// completion is the only event that can wake the core).
    core_stalled_on: Vec<Option<bh_cpu::MissToken>>,
    /// Deferred stalled cycles per core, replayed on wake-up (or at the end
    /// of the run) via `Core::absorb_hard_stall`.
    core_stall_debt: Vec<u64>,
    /// The BreakHammer [`quota_version`](BreakHammer::quota_version) whose
    /// quotas were last propagated into the LLC (`None` before the first
    /// propagation). While the version is unchanged the per-step propagation
    /// and the `next_event` quota-sync check are skipped — the LLC mirror is
    /// known to be current.
    synced_quota_version: Option<u64>,
    /// Recycled buffer for draining controller responses each step.
    response_buf: Vec<bh_mem::MemResponse>,
    /// Recycled per-core progress classifications from the latest
    /// [`System::next_event`] (empty whenever the next event is pinned to
    /// the very next cycle, where the skip replay never runs).
    progress_buf: Vec<CoreProgress>,
    /// Recycled buffer for draining LLC outgoing requests each step.
    outgoing_buf: Vec<bh_cpu::OutgoingRequest>,
}

impl System {
    /// Builds a system running `traces` (one per core). `required` lists the
    /// cores whose instruction budget must complete before the run ends; pass
    /// every benign core there.
    ///
    /// # Panics
    /// Panics if the configuration is invalid, the trace count does not match
    /// the core count, or `required` references an unknown core.
    pub fn new(config: SystemConfig, traces: &[Trace], required: Vec<usize>) -> Self {
        config.validate().expect("invalid system configuration");
        assert_eq!(
            traces.len(),
            config.cores,
            "need exactly one trace per core ({} cores, {} traces)",
            config.cores,
            traces.len()
        );
        assert!(required.iter().all(|r| *r < config.cores), "required core index out of range");

        // Build one mitigation instance per memory channel (the paper — and
        // BlockHammer before it — provisions per-channel trackers). Channel 0
        // uses the configured seed unchanged so single-channel systems are
        // bit-identical to the pre-multichannel simulator; further channels
        // derive their probabilistic seeds by offset.
        let channels = config.geometry.channels.max(1);
        let mechanisms: Vec<_> = (0..channels)
            .map(|ch| {
                config.mechanism.build(
                    &config.geometry,
                    &config.timing,
                    config.nrh,
                    config.seed.wrapping_add(ch as u64),
                )
            })
            .collect();
        // REGA adjusts the DRAM timing parameters (identically per channel).
        let timing = config.timing.clone().with_adjustment(&mechanisms[0].timing_adjustment());
        let breakhammer = if config.breakhammer {
            Some(BreakHammer::new(
                config.effective_breakhammer_config(),
                mechanisms[0].attribution(),
            ))
        } else {
            None
        };
        let instances = mechanisms
            .into_iter()
            .map(|mechanism| {
                let tracker = RowHammerTracker::new(
                    config.geometry.clone(),
                    config.nrh,
                    config.device.blast_radius,
                );
                let channel = DramChannel::with_config(
                    config.geometry.clone(),
                    timing.clone(),
                    config.energy.clone(),
                    config.device.clone(),
                    Some(tracker),
                );
                (channel, mechanism)
            })
            .collect();
        let memory = MemorySystem::new(config.memctrl.clone(), instances, breakhammer);

        let llc = LastLevelCache::new(config.cache.clone(), config.cores);
        let cores = traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                Core::new(ThreadId(i), config.core, trace.clone(), config.instructions_per_core)
            })
            .collect();

        let cores_count = config.cores;
        System {
            config,
            cores,
            llc,
            memory,
            required,
            pending_fills: VecDeque::new(),
            pending_fills_min: Cycle::MAX,
            next_writeback_id: 1 << 60,
            core_stalled_on: vec![None; cores_count],
            core_stall_debt: vec![0; cores_count],
            synced_quota_version: None,
            response_buf: Vec::new(),
            progress_buf: Vec::new(),
            outgoing_buf: Vec::new(),
        }
    }

    /// The memory system (for inspection in tests).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// The LLC (for inspection in tests).
    pub fn llc(&self) -> &LastLevelCache {
        &self.llc
    }

    fn required_finished(&self) -> bool {
        self.required.iter().all(|i| self.cores[*i].finished())
    }

    /// Runs the simulation to completion and returns the measured results.
    ///
    /// Dispatches to the kernel selected by
    /// [`SystemConfig::scheduler`](crate::SystemConfig); both kernels produce
    /// bit-identical results.
    pub fn run(self) -> SimulationResult {
        match self.config.scheduler {
            SchedulerKind::PerCycle => self.run_per_cycle(),
            SchedulerKind::EventDriven => self.run_event_driven(),
        }
    }

    /// The reference kernel: executes [`System::step`] at every DRAM cycle.
    fn run_per_cycle(mut self) -> SimulationResult {
        let mut clock = CpuClock::new(self.config.cpu_cycles_per_dram_cycle());
        let mut dram_cycle: Cycle = 0;
        while !self.required_finished() && dram_cycle < self.config.max_dram_cycles {
            self.step(dram_cycle, &mut clock);
            dram_cycle += 1;
        }
        self.finish(dram_cycle)
    }

    /// The event-driven kernel: executes [`System::step`] only at cycles
    /// where some layer can make progress, and fast-forwards across the dead
    /// cycles in between, replaying their counter increments in bulk so the
    /// results stay bit-identical to [`System::run_per_cycle`].
    fn run_event_driven(mut self) -> SimulationResult {
        let mut clock = CpuClock::new(self.config.cpu_cycles_per_dram_cycle());
        let max = self.config.max_dram_cycles;
        let mut dram_cycle: Cycle = 0;
        while !self.required_finished() && dram_cycle < max {
            self.step(dram_cycle, &mut clock);
            if self.required_finished() {
                dram_cycle += 1;
                break;
            }
            let next = self.next_event(dram_cycle, &clock);
            let next = next.clamp(dram_cycle + 1, max);
            if next > dram_cycle + 1 {
                self.skip_dead_cycles(next - dram_cycle - 1, &mut clock);
            }
            dram_cycle = next;
        }
        self.finish(dram_cycle)
    }

    /// One iteration of the simulation loop at `dram_cycle` — identical for
    /// both kernels.
    fn step(&mut self, dram_cycle: Cycle, clock: &mut CpuClock) {
        self.step_inner_quota(dram_cycle);
        self.step_inner_ctrl(dram_cycle);
        self.step_inner_fill(dram_cycle);
        self.step_inner_core(clock);
        self.step_inner_out(dram_cycle);
    }

    fn step_inner_quota(&mut self, _dram_cycle: Cycle) {
        // 1. Propagate BreakHammer's current quotas into the LLC (skipped
        // while the quota version says the LLC mirror is already current).
        if let Some(bh) = self.memory.breakhammer() {
            if self.synced_quota_version == Some(bh.quota_version()) {
                return;
            }
            for t in 0..self.config.cores {
                self.llc.set_quota(ThreadId(t), bh.quota(ThreadId(t)));
            }
            self.synced_quota_version = Some(bh.quota_version());
        }
    }

    fn step_inner_ctrl(&mut self, dram_cycle: Cycle) {
        // 2. Retry requests the memory system previously rejected, then tick
        // every channel's controller.
        self.memory.retry_pending();
        self.memory.tick(dram_cycle);
    }

    fn step_inner_fill(&mut self, dram_cycle: Cycle) {
        // 3. Collect responses and complete LLC misses whose data arrived.
        self.memory.drain_responses_into(&mut self.response_buf);
        for response in &self.response_buf {
            if response.kind.is_read() && response.id < (1 << 60) {
                self.pending_fills.push_back((response.completed_at, response.id));
                self.pending_fills_min = self.pending_fills_min.min(response.completed_at);
            }
        }
        if self.pending_fills_min > dram_cycle {
            // Nothing is due yet: skip the completion walk.
            return;
        }
        // In-place, order-preserving completion of due fills (same visit
        // order as draining the queue front to back).
        let llc = &mut self.llc;
        let mut next_min = Cycle::MAX;
        self.pending_fills.retain(|(ready, token)| {
            if *ready <= dram_cycle {
                llc.complete_miss(*token);
                false
            } else {
                next_min = next_min.min(*ready);
                true
            }
        });
        self.pending_fills_min = next_min;
    }

    fn step_inner_core(&mut self, clock: &mut CpuClock) {
        // 4. Tick the cores in the CPU clock domain. Hard-stalled cores
        // (window full behind an incomplete miss) are not ticked: their
        // cycles accumulate as debt and are replayed in bulk when their miss
        // completes, which is the only event that can change their state —
        // completions happen in the fill phase, strictly before this one.
        for cpu_cycle in clock.tick_range() {
            for (i, core) in self.cores.iter_mut().enumerate() {
                if core.finished() {
                    continue;
                }
                if let Some(token) = self.core_stalled_on[i] {
                    if !self.llc.is_completed(token) {
                        self.core_stall_debt[i] += 1;
                        continue;
                    }
                    core.absorb_hard_stall(std::mem::take(&mut self.core_stall_debt[i]));
                    self.core_stalled_on[i] = None;
                }
                core.tick(cpu_cycle, &mut self.llc);
                self.core_stalled_on[i] = core.window_full_on();
            }
        }
    }

    fn step_inner_out(&mut self, dram_cycle: Cycle) {
        // 5. Forward new LLC fills and writebacks to their memory channel.
        self.llc.take_outgoing_into(&mut self.outgoing_buf);
        for i in 0..self.outgoing_buf.len() {
            let outgoing = self.outgoing_buf[i];
            let req = if outgoing.is_writeback {
                let id = self.next_writeback_id;
                self.next_writeback_id += 1;
                MemRequest::write(id, outgoing.thread, outgoing.addr, dram_cycle)
            } else {
                MemRequest::read(
                    outgoing.token.expect("fills carry their MSHR token"),
                    outgoing.thread,
                    outgoing.addr,
                    dram_cycle,
                )
            };
            self.memory.enqueue_or_defer(req);
        }
    }

    /// Computes the next cycle at which [`System::step`] must run (strictly
    /// after `dram_cycle`), leaving the per-core progress analysis the skip
    /// replay needs in `progress_buf` (reused across calls; left empty when
    /// the next event is one cycle away and no skip can happen).
    ///
    /// Events, from any layer: a core able to retire or dispatch (forces the
    /// very next cycle), a core's window-head hit completing, a pending LLC
    /// fill arriving, the memory controller having an issuable command or
    /// refresh/preventive deadline, BreakHammer's next window edge, and a
    /// BreakHammer quota the LLC has not absorbed yet. Horizons may
    /// undershoot (waking early is only wasted work) but never overshoot.
    fn next_event(&mut self, dram_cycle: Cycle, clock: &CpuClock) -> Cycle {
        // Cheapest checks first: when the controller (O(1), memoized) or a
        // pending fill already pins the next event to the very next cycle, no
        // skip is possible and the per-core analysis is not needed (an empty
        // progress buffer is fine — the skip replay never runs for a
        // one-cycle advance).
        self.progress_buf.clear();
        let mut next = self.memory.next_event(dram_cycle);
        if next <= dram_cycle + 1 {
            return dram_cycle + 1;
        }
        if let Some(bh) = self.memory.breakhammer() {
            // BreakHammer quotas the LLC has not absorbed yet (e.g. restored
            // by the window rotation that `tick` just performed) are
            // propagated at the top of the next step — that step must not be
            // skipped, or a quota-stalled core would wake late. While the
            // quota version matches the last propagation the mirror is
            // known-current and the per-thread comparison is skipped.
            if self.synced_quota_version != Some(bh.quota_version()) {
                let mshrs = self.llc.config().mshrs;
                for t in 0..self.config.cores {
                    if self.llc.quota(ThreadId(t)) != bh.quota(ThreadId(t)).min(mshrs) {
                        return dram_cycle + 1;
                    }
                }
            }
        }
        if self.pending_fills_min != Cycle::MAX {
            next = next.min(self.pending_fills_min);
            if next <= dram_cycle + 1 {
                return dram_cycle + 1;
            }
        }

        let next_cpu = clock.next_cpu_cycle();
        for core in &self.cores {
            let p = core.progress(&self.llc, next_cpu);
            if matches!(p, CoreProgress::Active) {
                self.progress_buf.clear();
                return dram_cycle + 1;
            }
            self.progress_buf.push(p);
        }
        for p in &self.progress_buf {
            if let CoreProgress::Stalled(StallInfo { wake_at: Some(t), .. }) = p {
                next = next.min(dram_cycle + clock.dram_cycles_until(*t));
            }
        }
        if let Some(bh) = self.memory.breakhammer() {
            // The window rotation must happen at its exact cycle; the cycle
            // after it (when rotated quotas reach the LLC) is covered by the
            // pending-quota check above.
            next = next.min(bh.next_window_end());
        }
        next
    }

    /// Fast-forwards across `dead_cycles` DRAM cycles in which, by
    /// construction of [`System::next_event`], every layer is quiescent:
    /// replays exactly the counter increments the per-cycle kernel would
    /// have accrued (stalled-core cycle/stall counters, rejected LLC access
    /// probes, failed enqueue retries) without touching any other state.
    fn skip_dead_cycles(&mut self, dead_cycles: u64, clock: &mut CpuClock) {
        let cpu_ticks = clock.advance(dead_cycles);
        if cpu_ticks > 0 {
            for (core, p) in self.cores.iter_mut().zip(self.progress_buf.iter()) {
                if let CoreProgress::Stalled(stall) = p {
                    core.absorb_stall_ticks(cpu_ticks, stall);
                    if let Some(reason) = stall.reject {
                        self.llc.absorb_rejected_probes(cpu_ticks, reason);
                    }
                }
            }
        }
        if self.memory.has_pending_enqueue() {
            self.memory.absorb_enqueue_rejections(dead_cycles);
        }
    }

    fn finish(mut self, dram_cycles: Cycle) -> SimulationResult {
        // Settle any deferred hard-stall cycles before reading core stats.
        for (i, core) in self.cores.iter_mut().enumerate() {
            let debt = std::mem::take(&mut self.core_stall_debt[i]);
            if debt > 0 {
                core.absorb_hard_stall(debt);
            }
        }
        let cores: Vec<CorePerformance> = self
            .cores
            .iter()
            .map(|core| CorePerformance {
                thread: core.thread(),
                instructions: core.retired_instructions(),
                cycles: core.stats().cycles,
                ipc: core.ipc(),
                finished: core.finished(),
            })
            .collect();

        let ever_suspect: Vec<bool> = (0..self.config.cores)
            .map(|t| {
                self.memory
                    .breakhammer()
                    .map(|bh| bh.is_suspect(ThreadId(t)) || bh.suspect_windows(ThreadId(t)) > 0)
                    .unwrap_or(false)
            })
            .collect();
        let latency = (0..self.config.cores).map(|t| self.memory.latency_of(ThreadId(t))).collect();
        // The per-channel breakdown is the single source for energy and
        // bitflips: the aggregates below are sums over it, so the two views
        // can never drift apart.
        let per_channel: Vec<ChannelBreakdown> = self
            .memory
            .controllers()
            .iter()
            .map(|ctrl| {
                let channel = ctrl.channel();
                ChannelBreakdown {
                    controller: ctrl.stats().clone(),
                    dram: channel.stats().clone(),
                    energy_nj: channel.energy().total_nj(
                        channel.energy_params(),
                        channel.timing(),
                        dram_cycles,
                        channel.geometry().ranks,
                    ),
                    bitflips: channel.rowhammer().map(|t| t.bitflip_count()).unwrap_or(0),
                }
            })
            .collect();
        let energy_nj = per_channel.iter().map(|c| c.energy_nj).sum();
        let bitflips = per_channel.iter().map(|c| c.bitflips).sum();
        let controller = self.memory.aggregate_stats();
        let preventive_actions = controller.preventive_actions_total();

        SimulationResult {
            cores,
            dram_cycles,
            controller,
            dram: self.memory.aggregate_dram_stats(),
            cache: self.llc.stats().clone(),
            energy_nj,
            preventive_actions,
            bitflips,
            ever_suspect,
            breakhammer: self.memory.breakhammer().map(|bh| bh.stats().clone()),
            latency,
            per_channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bh_mem::AddressMapping;
    use bh_mitigation::MechanismKind;
    use bh_workloads::{AttackerProfile, BenignProfile, TraceGenerator};

    fn generator(config: &SystemConfig) -> TraceGenerator {
        TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default())
    }

    fn benign_traces(config: &SystemConfig, entries: usize) -> Vec<Trace> {
        let gen = generator(config);
        // Streaming-dominated profiles: benign applications that rarely hammer
        // a row enough to trigger preventive actions at moderate N_RH, so the
        // attacker's contribution stands out (the paper's premise in §8.1).
        let profiles = ["libquantum", "fotonik3d", "xalancbmk", "povray"];
        profiles
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // `resolve` threads an actionable error naming the known
                // profiles; a typo here fails with that message instead of an
                // anonymous `unwrap` panic mid-simulation.
                let mut p = BenignProfile::resolve(name).unwrap_or_else(|e| panic!("{e}"));
                // Shrink footprints to the tiny test geometry.
                p.footprint_rows = p.footprint_rows.min(2_000);
                p.hot_rows = p.hot_rows.min(16).max(if p.hot_row_fraction > 0.0 { 1 } else { 0 });
                gen.benign(&p, entries, 100 + i as u64)
            })
            .collect()
    }

    fn attack_traces(config: &SystemConfig, entries: usize) -> Vec<Trace> {
        let mut traces = benign_traces(config, entries);
        traces[3] = AttackerProfile::paper_default().trace(
            &config.geometry,
            AddressMapping::paper_default(),
            entries,
            999,
        );
        traces
    }

    #[test]
    fn benign_system_without_mitigation_completes() {
        let mut config = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        config.instructions_per_core = 20_000;
        let traces = benign_traces(&config, 4_000);
        let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
        assert!(result.all_finished(&[0, 1, 2, 3]), "cores did not finish: {:?}", result.cores);
        for core in &result.cores {
            assert!(core.ipc > 0.05 && core.ipc <= 4.0, "ipc {}", core.ipc);
        }
        assert!(result.controller.reads_served > 0);
        assert!(result.dram.activates > 0);
        assert!(result.energy_nj > 0.0);
        assert_eq!(result.preventive_actions, 0);
        assert!(result.breakhammer.is_none());
    }

    #[test]
    fn attacker_with_graphene_triggers_actions_and_breakhammer_throttles_it() {
        let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 128, false);
        base.instructions_per_core = 15_000;

        let traces = attack_traces(&base, 4_000);
        let without = System::new(base.clone(), &traces, vec![0, 1, 2]).run();
        assert!(without.preventive_actions > 0, "the attacker must trigger Graphene");
        assert_eq!(without.bitflips, 0, "Graphene must prevent bitflips");

        let mut with_bh = base;
        with_bh.breakhammer = true;
        // Lower TH_threat so the short test run identifies the attacker early;
        // the Table 2 default (32) needs longer runs to accumulate scores.
        let mut bh_cfg = with_bh.effective_breakhammer_config();
        bh_cfg.threat_threshold = 8.0;
        with_bh.breakhammer_config = Some(bh_cfg);
        let with = System::new(with_bh, &traces, vec![0, 1, 2]).run();
        assert_eq!(with.bitflips, 0, "BreakHammer must not compromise protection");
        assert!(with.ever_suspect[3], "the attacker must be identified as a suspect");
        assert!(!with.ever_suspect[0], "benign thread 0 must not be a suspect");
        assert!(
            with.preventive_actions < without.preventive_actions,
            "BreakHammer must reduce preventive actions ({} vs {})",
            with.preventive_actions,
            without.preventive_actions
        );
        let benign = [0usize, 1, 2];
        assert!(
            with.total_ipc(&benign) > without.total_ipc(&benign),
            "benign throughput must improve with BreakHammer ({:.3} vs {:.3})",
            with.total_ipc(&benign),
            without.total_ipc(&benign)
        );
        assert!(with.cache.quota_rejections > 0, "the attacker must have been quota-limited");
    }

    #[test]
    fn breakhammer_is_neutral_for_all_benign_workloads() {
        let mut base = SystemConfig::fast_test(MechanismKind::Graphene, 256, false);
        base.instructions_per_core = 15_000;
        let traces = benign_traces(&base, 4_000);
        let without = System::new(base.clone(), &traces, vec![0, 1, 2, 3]).run();
        let mut with_cfg = base;
        with_cfg.breakhammer = true;
        let with = System::new(with_cfg, &traces, vec![0, 1, 2, 3]).run();
        let all = [0usize, 1, 2, 3];
        let ratio = with.total_ipc(&all) / without.total_ipc(&all);
        assert!(
            ratio > 0.9,
            "BreakHammer must not noticeably slow down all-benign workloads (ratio {ratio:.3})"
        );
    }

    #[test]
    fn rega_runs_with_inflated_timing_and_no_discrete_actions() {
        let mut config = SystemConfig::fast_test(MechanismKind::Rega, 64, true);
        config.instructions_per_core = 10_000;
        let traces = benign_traces(&config, 3_000);
        let result = System::new(config, &traces, vec![0, 1, 2, 3]).run();
        assert!(result.all_finished(&[0, 1, 2, 3]));
        assert_eq!(result.preventive_actions, 0, "REGA performs no controller-visible actions");
    }

    #[test]
    #[should_panic(expected = "one trace per core")]
    fn trace_count_mismatch_is_rejected() {
        let config = SystemConfig::fast_test(MechanismKind::None, 1024, false);
        let traces = benign_traces(&config, 100);
        let _ = System::new(config, &traces[0..2], vec![0]);
    }
}
