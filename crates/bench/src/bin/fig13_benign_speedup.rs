//! Figure 13: BreakHammer's impact on system performance for all-benign
//! four-core workloads at the lowest evaluated N_RH, per workload-mix class —
//! normalized to the same mechanism without BreakHammer.

use bh_bench::{
    geomean_speedup, maybe_print_config, paper_config, print_results, select, Campaign, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = *scale.nrh_values.iter().min().expect("non-empty N_RH sweep");
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let mut records = Vec::new();
    for &mech in &mechanisms {
        for bh in [false, true] {
            let config = paper_config(mech, nrh, bh, &scale);
            records.extend(campaign.run(&config, /*attack=*/ false));
        }
    }

    let classes = ["HHHH", "HHMM", "MMMM", "HHLL", "MMLL", "LLLL"];
    let mut table = Table::new(["mechanism", "mix_class", "normalized_weighted_speedup"]);
    for &mech in &mechanisms {
        let with = select(&records, mech, nrh, true);
        let without = select(&records, mech, nrh, false);
        for class in classes.iter().map(|c| c.to_string()).chain(["geomean".to_string()]) {
            let w = bh_bench::filter_class(&with, &class);
            let wo = bh_bench::filter_class(&without, &class);
            if w.is_empty() || wo.is_empty() {
                continue;
            }
            table.push_row([
                format!("{mech}+BH"),
                class.clone(),
                fmt3(geomean_speedup(&w) / geomean_speedup(&wo)),
            ]);
        }
    }
    print_results(
        &format!("Figure 13: normalized weighted speedup on all-benign workloads (N_RH = {nrh})"),
        &table,
    );
}
