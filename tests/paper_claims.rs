//! Integration tests pinning the paper's analytical claims and configuration
//! constants — the parts of the paper that must hold exactly, independent of
//! simulation scale.

use breakhammer_suite::breakhammer::hw_cost::HardwareCost;
use breakhammer_suite::breakhammer::security::max_attacker_score_ratio;
use breakhammer_suite::breakhammer::BreakHammerConfig;
use breakhammer_suite::dram::{DramGeometry, TimingParams};
use breakhammer_suite::mitigation::MechanismKind;
use breakhammer_suite::sim::SystemConfig;

#[test]
fn security_reference_points_from_section_5_2() {
    let r = max_attacker_score_ratio(0.5, 0.65).unwrap();
    assert!((r - 4.71).abs() < 0.01, "TH_outlier=0.65 @ 50% attackers: got {r}");
    let r = max_attacker_score_ratio(0.9, 0.05).unwrap();
    assert!((r - 1.90).abs() < 0.02, "TH_outlier=0.05 @ 90% attackers: got {r}");
}

#[test]
fn hardware_cost_matches_section_6() {
    let c = HardwareCost::paper_configuration();
    assert!((c.area_mm2 - 0.00042).abs() < 1e-5);
    assert!(c.xeon_area_fraction < 0.00001);
    assert!(c.latency_ns < 0.7);
    let ddr4 = TimingParams::ddr4_3200();
    assert!(c.fits_under_trrd(ddr4.cycles_to_ns(ddr4.t_rrd_s)));
}

#[test]
fn table_1_and_table_2_constants() {
    let config = SystemConfig::paper_table1(MechanismKind::Graphene, 1024, true);
    assert_eq!(config.cores, 4);
    assert_eq!(config.geometry.ranks, 2);
    assert_eq!(config.geometry.bank_groups, 8);
    assert_eq!(config.geometry.banks_per_group, 2);
    assert_eq!(config.geometry.rows_per_bank, 64 * 1024);
    assert_eq!(config.cache.capacity_bytes, 8 * 1024 * 1024);
    assert_eq!(config.memctrl.read_queue_capacity, 64);
    assert_eq!(config.memctrl.frfcfs_cap, 4);

    let bh = BreakHammerConfig::paper_table2(&config.timing, 4, 64);
    assert_eq!(bh.threat_threshold, 32.0);
    assert_eq!(bh.outlier_threshold, 0.65);
    assert_eq!(bh.old_suspect_penalty, 1);
    assert_eq!(bh.new_suspect_divisor, 10);
    let window_ms = config.timing.cycles_to_ns(bh.window_cycles) / 1_000_000.0;
    assert!((window_ms - 64.0).abs() < 0.01);
}

#[test]
fn mechanism_storage_trends_match_section_3_and_8_3() {
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();
    let kib = |mech: MechanismKind, nrh: u64| -> f64 {
        mech.build(&geometry, &timing, nrh, 0).storage_bits() as f64 / 8.0 / 1024.0
    };
    // Graphene's tracking tables and BlockHammer's history grow as N_RH drops.
    assert!(kib(MechanismKind::Graphene, 64) > kib(MechanismKind::Graphene, 4096));
    assert!(kib(MechanismKind::BlockHammer, 64) > kib(MechanismKind::BlockHammer, 4096));
    // Hydra stays in the tens-of-KiB range even at very low thresholds
    // (the paper quotes 56.5 KiB for the dual-rank configuration).
    let hydra = kib(MechanismKind::Hydra, 64);
    assert!(hydra > 1.0 && hydra < 200.0, "Hydra storage {hydra} KiB");
    // BreakHammer itself is orders of magnitude smaller than any tracker.
    let breakhammer_kib = HardwareCost::estimate(4, 1).storage_bits as f64 / 8.0 / 1024.0;
    assert!(breakhammer_kib < 0.1);
    assert!(breakhammer_kib * 100.0 < kib(MechanismKind::Graphene, 1024));
}

#[test]
fn eight_paper_mechanisms_build_for_every_evaluated_threshold() {
    let geometry = DramGeometry::paper_ddr5();
    let timing = TimingParams::ddr5_4800();
    for nrh in [4096u64, 2048, 1024, 512, 256, 128, 64] {
        for mech in MechanismKind::paper_mechanisms() {
            let built = mech.build(&geometry, &timing, nrh, 1);
            assert_eq!(built.kind(), mech);
        }
    }
}
