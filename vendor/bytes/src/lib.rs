//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the subset the trace codec uses: [`Bytes`]/[`BytesMut`] with
//! cheap cloning and zero-copy `slice`, plus the [`Buf`]/[`BufMut`] traits
//! with the big-endian integer accessors. Unlike the real crate this shim
//! always backs `Bytes` with a reference-counted `Vec<u8>`; the observable
//! semantics the tests rely on (big-endian order, cursor advancement,
//! `slice` sharing, `freeze`) are identical.

#![warn(missing_docs)]

use std::sync::Arc;

/// Cheaply cloneable, sliceable, immutable byte buffer with an internal
/// read cursor (advanced by the [`Buf`] accessors).
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied here; the real crate borrows it,
    /// which is indistinguishable to safe callers).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` viewing `range` of this buffer (relative to the
    /// current cursor), sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds of buffer of length {}",
            range.start,
            range.end,
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer, mirroring `bytes::BytesMut`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte buffer with an advancing cursor (big-endian
/// accessors), mirroring `bytes::Buf`.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "buffer exhausted: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write access to a growable byte buffer (big-endian writers), mirroring
/// `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_roundtrip() {
        let mut buf = BytesMut::with_capacity(13);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_u32(0xdead_beef);
        buf.put_u8(0x7f);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 13);
        assert_eq!(bytes.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(bytes.get_u32(), 0xdead_beef);
        assert_eq!(bytes.get_u8(), 0x7f);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn header_matches_to_be_bytes() {
        let mut buf = BytesMut::new();
        buf.put_u64(3);
        assert_eq!(buf.as_ref(), &3u64.to_be_bytes());
    }

    #[test]
    fn slice_shares_storage_and_reads_relative() {
        let mut buf = BytesMut::new();
        for i in 0..10u8 {
            buf.put_u8(i);
        }
        let bytes = buf.freeze();
        let mid = bytes.slice(2..6);
        assert_eq!(mid.as_slice(), &[2, 3, 4, 5]);
        let clone = bytes.clone();
        assert_eq!(clone, bytes);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn reading_past_the_end_panics() {
        let mut bytes = Bytes::from_static(&[1, 2]);
        let _ = bytes.get_u32();
    }
}
