//! Resume equivalence: an interrupted sweep plus a resume must produce the
//! same result set as one uninterrupted sweep.
//!
//! Interruption is simulated deterministically with the engine's
//! `cell_limit` budget (a real SIGKILL leaves the same store state minus any
//! line that was mid-write, which the resume parser already skips). Because
//! the simulator is deterministic, equivalence is checked at full strength:
//! the two stores hold byte-identical lines, modulo ordering.

// Test-only HashSets: completed-cell fixtures and assertion sets.
#![allow(clippy::disallowed_types)]

use bh_bench::campaign::{report_table, CampaignSpec, ResultStore};
use bh_bench::Scale;
use bh_mitigation::MechanismKind;
use std::collections::HashSet;
use std::path::PathBuf;

fn tiny_spec() -> CampaignSpec {
    let mut scale = Scale::quick();
    scale.instructions_per_core = 4_000;
    scale.benign_entries = 600;
    scale.attacker_entries = 600;
    scale.mixes_per_class = 1;
    scale.worker_threads = 2;
    let mut spec = CampaignSpec::from_scale(scale, vec![MechanismKind::Graphene], true);
    spec.nrh_values = vec![64];
    spec.breakhammer_options = vec![true];
    spec.seeds = vec![42, 43];
    spec
}

fn test_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bh-campaign-resume-{tag}-{}.jsonl", std::process::id()))
}

fn sorted_lines(path: &PathBuf) -> Vec<String> {
    let mut lines: Vec<String> = std::fs::read_to_string(path)
        .expect("store is readable")
        .lines()
        .map(str::to_string)
        .collect();
    lines.sort();
    lines
}

#[test]
fn interrupted_sweep_resumes_to_the_uninterrupted_result_set() {
    let spec = tiny_spec();
    let full_path = test_path("full");
    let chunked_path = test_path("chunked");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&chunked_path);

    // One uninterrupted sweep over the whole grid.
    let full_store = ResultStore::create(&full_path).expect("fresh store");
    let full = spec.run(&full_store, &HashSet::new(), None);
    assert!(full.complete(), "{full:?}");
    assert_eq!(full.evaluated_cells, full.total_cells);
    assert_eq!(full.skipped_cells + full.deferred_cells, 0);
    // 1 config × 6 attack mixes × 2 seeds.
    assert_eq!(full.total_cells, 12);

    // The same sweep "interrupted" after 5 cells (mid-way through the first
    // seed's grid)…
    let chunked_store = ResultStore::create(&chunked_path).expect("fresh store");
    let interrupted = spec.run(&chunked_store, &HashSet::new(), Some(5));
    drop(chunked_store);
    assert_eq!(interrupted.evaluated_cells, 5, "{interrupted:?}");
    assert_eq!(interrupted.deferred_cells, 7);
    assert!(!interrupted.complete());

    // …then resumed: the settled cells are loaded from the store and
    // skipped, the deferred ones run now.
    let settled = ResultStore::settled_cells(&chunked_path).expect("store parses");
    assert_eq!(settled.len(), 5);
    let resumed_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 5, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 7);
    assert!(resumed.complete());

    // The interrupted-then-resumed store equals the uninterrupted one,
    // byte for byte, modulo line order.
    assert_eq!(sorted_lines(&full_path), sorted_lines(&chunked_path));

    // And a second resume finds nothing left to do.
    let settled = ResultStore::settled_cells(&chunked_path).expect("store parses");
    let noop_store = ResultStore::append_to(&chunked_path).expect("store reopens");
    let noop = spec.run(&noop_store, &settled, None);
    assert_eq!(noop.evaluated_cells, 0, "{noop:?}");
    assert_eq!(noop.skipped_cells, noop.total_cells);

    // The store feeds the report aggregation.
    let records = ResultStore::load(&chunked_path).expect("store loads");
    assert_eq!(records.len(), 12);
    assert!(records.iter().all(|r| r.mechanism == "Graphene" && r.nrh == 64 && r.breakhammer));
    let seeds: HashSet<u64> = records.iter().map(|r| r.seed).collect();
    assert_eq!(seeds, HashSet::from([42, 43]));
    let table = report_table(&records);
    assert_eq!(table.len(), 1, "one configuration group");

    std::fs::remove_file(&full_path).expect("cleanup");
    std::fs::remove_file(&chunked_path).expect("cleanup");
}

/// A store corrupted mid-flight — interior garbage plus a half-overwritten
/// record — must not poison resume: the parser skips the damaged lines and a
/// resume reruns exactly the cells they belonged to.
#[test]
fn corrupted_store_lines_are_skipped_and_rerun_on_resume() {
    let spec = tiny_spec();
    let full_path = test_path("corrupt-full");
    let corrupt_path = test_path("corrupt");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&corrupt_path);

    // Reference: one clean uninterrupted sweep.
    let full_store = ResultStore::create(&full_path).expect("fresh store");
    let full = spec.run(&full_store, &HashSet::new(), None);
    assert!(full.complete());
    drop(full_store);

    // Corrupt a copy: replace one record with interior garbage and splice a
    // half-overwritten hybrid (the head of one record glued to the tail of
    // another — what a torn write plus a partial rewrite leaves behind).
    let clean_lines: Vec<String> = std::fs::read_to_string(&full_path)
        .expect("store is readable")
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(clean_lines.len(), 12);
    let mut damaged = clean_lines.clone();
    damaged[3] = "x#!garbage not json at all".to_string();
    // 40 bytes cuts mid-way through the `"cell"` value, so the hybrid both
    // breaks the string structure and lacks the record's middle fields.
    let head = &clean_lines[7][..40];
    let tail = &clean_lines[8][clean_lines[8].len() / 2..];
    damaged[7] = format!("{head}{tail}");
    std::fs::write(&corrupt_path, format!("{}\n", damaged.join("\n"))).expect("write corrupt");

    // Exactly the two damaged cells are missing from the settled set…
    let settled = ResultStore::settled_cells(&corrupt_path).expect("parser skips damage");
    assert_eq!(settled.len(), 10, "{settled:?}");
    assert_eq!(ResultStore::load(&corrupt_path).expect("store loads").len(), 10);

    // …and a resume reruns exactly those two.
    let resumed_store = ResultStore::append_to(&corrupt_path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 10, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 2);
    assert!(resumed.complete());

    // After the resume, the store's well-formed records are equivalent to the
    // clean sweep's (the two corrupted lines stay in the file but parse to
    // nothing; their cells were re-appended byte-identically).
    assert_eq!(ResultStore::entries(&corrupt_path).expect("store parses").len(), 12);
    let mut expected = clean_lines;
    expected.sort();
    let mut recovered: Vec<String> = sorted_lines(&corrupt_path)
        .into_iter()
        .filter(|line| bh_bench::StoreEntry::parse(line).is_some())
        .collect();
    recovered.sort();
    assert_eq!(expected, recovered);

    std::fs::remove_file(&full_path).expect("cleanup");
    std::fs::remove_file(&corrupt_path).expect("cleanup");
}

/// A cell whose evaluation panics must not kill the sweep: it is recorded as
/// a `"failed"` line, surfaced in the summary, and retried by a later resume.
#[test]
fn panicking_cell_is_isolated_and_retried_on_resume() {
    let mut spec = tiny_spec();
    // Force every cell of one mix class to panic (2 seeds × 1 matching mix).
    spec.force_panic_mix = Some("HHHA".to_string());
    let path = test_path("panic");
    let _ = std::fs::remove_file(&path);

    let store = ResultStore::create(&path).expect("fresh store");
    let summary = spec.run(&store, &HashSet::new(), None);
    drop(store);
    assert_eq!(summary.failed_cells, 2, "{summary:?}");
    assert_eq!(summary.evaluated_cells + summary.failed_cells, summary.total_cells);
    assert!(!summary.complete(), "failed cells leave the grid incomplete");

    // The failures are in the store as failed lines, pending retry.
    let pending = ResultStore::failed_cells(&path).expect("store parses");
    assert_eq!(pending.len(), 2, "{pending:?}");
    assert!(pending.iter().all(|f| f.cell.contains("HHHA")), "{pending:?}");
    assert!(pending.iter().all(|f| f.error.contains("forced test panic")), "{pending:?}");
    // A panic is not a verdict: failed cells are pending, not settled.
    let settled = ResultStore::settled_cells(&path).expect("store parses");
    assert_eq!(settled.len(), 10);

    // Resume without the fault injected: the failed cells rerun to success.
    spec.force_panic_mix = None;
    let resumed_store = ResultStore::append_to(&path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 10, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 2);
    assert_eq!(resumed.failed_cells, 0);
    assert!(resumed.complete());
    assert!(ResultStore::failed_cells(&path).expect("store parses").is_empty());
    assert_eq!(ResultStore::load(&path).expect("store loads").len(), 12);

    std::fs::remove_file(&path).expect("cleanup");
}

/// A cell the watchdog classifies as livelocked is *settled*: recorded with
/// its diagnostic report, counted in the summary, and skipped — not retried —
/// by resume, because a deterministic verdict reruns to itself.
#[test]
fn livelocked_cells_are_settled_and_skipped_on_resume() {
    let mut spec = tiny_spec();
    // Starve every cell of one mix class into a livelock (2 seeds × 1 mix).
    spec.force_spin_mix = Some("HHHA".to_string());
    let path = test_path("spin");
    let _ = std::fs::remove_file(&path);

    let store = ResultStore::create(&path).expect("fresh store");
    let summary = spec.run(&store, &HashSet::new(), None);
    drop(store);
    assert_eq!(summary.livelock_cells, 2, "{summary:?}");
    assert_eq!(summary.budget_cells, 0);
    assert_eq!(summary.failed_cells, 0, "a livelock verdict is not a panic");
    assert_eq!(summary.evaluated_cells, summary.total_cells);
    assert!(summary.complete(), "verdict cells settle the grid");

    // The verdicts are in the store with their diagnostic snapshots…
    let verdicts = ResultStore::verdict_cells(&path).expect("store parses");
    assert_eq!(verdicts.len(), 2, "{verdicts:?}");
    assert!(verdicts.iter().all(|v| v.cell.contains("HHHA")), "{verdicts:?}");
    assert!(verdicts.iter().all(|v| v.status == "livelock" && v.termination == "livelock"));
    assert!(
        verdicts
            .iter()
            .all(|v| v.livelock_report.as_deref().is_some_and(|r| r.contains("livelock at cycle"))),
        "{verdicts:?}"
    );
    // …and count as settled but not ok.
    let settled = ResultStore::settled_cells(&path).expect("store parses");
    assert_eq!(settled.len(), 12);
    assert_eq!(ResultStore::completed_cells(&path).expect("store parses").len(), 10);

    // Resume — with the chaos hook cleared — finds nothing to do: the
    // verdict cells are skipped, not rerun.
    spec.force_spin_mix = None;
    let resumed_store = ResultStore::append_to(&path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 12, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 0);
    assert!(resumed.complete());

    std::fs::remove_file(&path).expect("cleanup");
}

/// A SIGKILL mid-append leaves a truncated final line with no trailing
/// newline. The broken crc seal must make every reader drop exactly that
/// line, and a resume must rerun its cell without gluing the new record onto
/// the torn tail — restoring the clean result set.
#[test]
fn truncated_final_line_is_dropped_and_rerun_on_resume() {
    let spec = tiny_spec();
    let path = test_path("torn");
    let _ = std::fs::remove_file(&path);

    let store = ResultStore::create(&path).expect("fresh store");
    assert!(spec.run(&store, &HashSet::new(), None).complete());
    drop(store);
    let clean = sorted_lines(&path);
    assert_eq!(clean.len(), 12);

    // Tear the file mid-way through the last line, exactly as an interrupted
    // write leaves it: partial record, no trailing newline.
    let bytes = std::fs::read(&path).expect("store is readable");
    let last_start = bytes[..bytes.len() - 1].iter().rposition(|&b| b == b'\n').unwrap() + 1;
    let cut = last_start + (bytes.len() - last_start) / 2;
    std::fs::write(&path, &bytes[..cut]).expect("write torn store");

    // The torn line fails its seal and drops out of the settled set…
    let settled = ResultStore::settled_cells(&path).expect("parser drops the torn line");
    assert_eq!(settled.len(), 11, "{settled:?}");

    // …and a resume reruns exactly that one cell.
    let resumed_store = ResultStore::append_to(&path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 11, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 1);
    assert!(resumed.complete());

    // The recovered store's parseable lines equal the clean sweep's, byte
    // for byte — the torn tail parses to nothing and its cell was
    // re-appended deterministically.
    let recovered: Vec<String> = sorted_lines(&path)
        .into_iter()
        .filter(|line| bh_bench::StoreEntry::parse(line).is_some())
        .collect();
    assert_eq!(clean, recovered);

    std::fs::remove_file(&path).expect("cleanup");
}

/// Both chaos hooks at once — forced panics in one mix class, injected
/// livelocks in another — must leave a store with honest per-cell statuses
/// that resumes idempotently: failures retried, verdicts skipped.
#[test]
fn mixed_chaos_sweep_records_honest_statuses_and_resumes_idempotently() {
    let mut spec = tiny_spec();
    spec.force_spin_mix = Some("HHHA".to_string());
    spec.force_panic_mix = Some("LLLA".to_string());
    let path = test_path("mixed");
    let _ = std::fs::remove_file(&path);

    let store = ResultStore::create(&path).expect("fresh store");
    let summary = spec.run(&store, &HashSet::new(), None);
    drop(store);
    assert_eq!(summary.livelock_cells, 2, "{summary:?}");
    assert_eq!(summary.failed_cells, 2);
    assert_eq!(summary.evaluated_cells, 10, "8 ok + 2 livelock");
    assert!(!summary.complete(), "failed cells leave the grid incomplete");

    // Honest statuses: 8 ok, 2 livelock (settled), 2 failed (pending).
    assert_eq!(ResultStore::completed_cells(&path).expect("store parses").len(), 8);
    let settled = ResultStore::settled_cells(&path).expect("store parses");
    assert_eq!(settled.len(), 10);
    assert_eq!(ResultStore::failed_cells(&path).expect("store parses").len(), 2);

    // Resume with the panic fault healed: only the failed cells rerun; the
    // livelock verdicts stay settled.
    spec.force_panic_mix = None;
    let resumed_store = ResultStore::append_to(&path).expect("store reopens");
    let resumed = spec.run(&resumed_store, &settled, None);
    assert_eq!(resumed.skipped_cells, 10, "{resumed:?}");
    assert_eq!(resumed.evaluated_cells, 2);
    assert_eq!(resumed.failed_cells, 0);
    assert_eq!(resumed.livelock_cells, 0, "verdict cells were skipped, not rerun");
    assert!(resumed.complete());

    // A second resume is a no-op: the store is fully settled.
    let settled = ResultStore::settled_cells(&path).expect("store parses");
    assert_eq!(settled.len(), 12);
    let noop_store = ResultStore::append_to(&path).expect("store reopens");
    let noop = spec.run(&noop_store, &settled, None);
    assert_eq!(noop.evaluated_cells, 0, "{noop:?}");
    assert_eq!(noop.skipped_cells, 12);
    assert_eq!(ResultStore::verdict_cells(&path).expect("store parses").len(), 2);

    std::fs::remove_file(&path).expect("cleanup");
}
