//! Ablation study (extension beyond the paper's figures): how BreakHammer's
//! remaining configuration parameters affect its benefit under attack —
//! the outlier threshold TH_outlier, the quota divisor P_newsuspect and the
//! throttling-window length — using Graphene as the paired mechanism at the
//! lowest evaluated N_RH.

use bh_bench::{geomean_speedup, maybe_print_config, paper_config, print_results, Campaign, Scale};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, fmt_pct, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = *scale.nrh_values.iter().min().expect("non-empty sweep");
    let mut campaign = Campaign::new(scale.clone());

    // Reference: the mechanism without BreakHammer.
    let without = campaign.run(&paper_config(MechanismKind::Graphene, nrh, false, &scale), true);
    let without_ws = geomean_speedup(&without.iter().collect::<Vec<_>>());

    let mut table = Table::new(["parameter", "value", "normalized_ws", "attacker_identified"]);
    let mut run_variant =
        |campaign: &mut Campaign,
         label: &str,
         value: String,
         tweak: &dyn Fn(&mut bh_core::BreakHammerConfig)| {
            let mut config = paper_config(MechanismKind::Graphene, nrh, true, &scale);
            let mut bh = config.effective_breakhammer_config();
            tweak(&mut bh);
            config.breakhammer_config = Some(bh);
            let records = campaign.run(&config, true);
            let sel: Vec<_> = records.iter().collect();
            let identified = records.iter().filter(|r| r.attacker_identified).count() as f64
                / records.len() as f64;
            table.push_row([
                label.to_string(),
                value,
                fmt3(geomean_speedup(&sel) / without_ws),
                fmt_pct(identified),
            ]);
        };

    for outlier in [0.05, 0.65, 0.95] {
        run_variant(&mut campaign, "TH_outlier", format!("{outlier}"), &|bh| {
            bh.outlier_threshold = outlier;
        });
    }
    for divisor in [2usize, 10, 64] {
        run_variant(&mut campaign, "P_newsuspect", divisor.to_string(), &|bh| {
            bh.new_suspect_divisor = divisor;
        });
    }
    for window_ms in [16.0f64, 64.0, 256.0] {
        run_variant(&mut campaign, "TH_window_ms", format!("{window_ms}"), &|bh| {
            bh.window_cycles = bh_dram::TimingParams::ddr5_4800().ms_to_cycles(window_ms);
        });
    }

    print_results(
        &format!("Ablations: BreakHammer parameter sensitivity (Graphene, N_RH = {nrh}, attacker present; normalized to Graphene without BreakHammer)"),
        &table,
    );
}
