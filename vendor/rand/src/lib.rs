//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no cargo-registry access, so the workspace
//! vendors the exact API surface the simulators use: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom::choose`.
//!
//! The generator behind `StdRng` here is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically far better than the
//! tests require. It is **not** the same stream as the real `rand::StdRng`
//! (ChaCha12), which is explicitly *not* a stability guarantee of the real
//! crate either; nothing in-tree depends on a particular stream, only on
//! determinism for a fixed seed.

#![warn(missing_docs)]

/// A source of random `u64`s; the base trait every generator implements.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`]
/// (the shim's collapse of `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed, mirroring
/// `rand::SeedableRng` far enough for `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim's `SmallRng` is the same generator as its `StdRng`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// Mirror of `rand::distributions` far enough for `Standard` imports.
pub mod distributions {
    pub use super::StandardSample as Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_interval_samples() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
