//! # bh-workloads — synthetic workloads and attackers
//!
//! The paper evaluates BreakHammer with memory traces from SPEC CPU2006/2017,
//! TPC, MediaBench and YCSB plus a malicious memory-performance attacker.
//! Those traces are not redistributable, so this crate provides synthetic
//! generators that reproduce the properties the evaluation actually depends
//! on:
//!
//! * [`BenignProfile`] / [`TraceGenerator`] — benign applications grouped into
//!   the paper's High / Medium / Low memory-intensity classes, with organic
//!   hot rows matching Table 3;
//! * the composable attacker framework — an [`AccessPattern`] (the
//!   hammerer: [`ClassicPattern`], Blacksmith-style [`FuzzedPattern`],
//!   RowPress-style [`RowPressPattern`], benign-mimicry [`DecoyPattern`])
//!   × an [`AggressorPlacement`] (the allocator: [`NeighborPlacement`],
//!   [`SpreadPlacement`]) × a [`VictimLayout`] (the data at risk:
//!   [`SandwichedVictims`], [`KeyTableVictims`]), glued by
//!   [`ComposedAttacker`] and named by the [`scenario_catalog()`];
//! * [`AttackerProfile`] — the legacy `clflush`-style hammering loops
//!   (double-sided, many-sided, multi-bank), kept as a bit-identical compat
//!   facade that lowers onto the framework;
//! * [`MixClass`] / [`MixBuilder`] — the four-core workload mixes of §7 and
//!   §8.1 (HHHH…LLLL and HHHA…LLLA);
//! * [`characterize()`] — the Table 3 characterisation (RBMPKI and rows with
//!   64+/128+/512+ activations per window).
//!
//! ## Example
//!
//! ```
//! use bh_workloads::{MixBuilder, MixClass, TraceGenerator};
//!
//! let builder = MixBuilder::new(TraceGenerator::paper_default());
//! let class = MixClass::attack_classes()[0]; // "HHHA"
//! let mix = builder.build(class, 0, 42);
//! assert_eq!(mix.cores(), 4);
//! assert_eq!(mix.attacker_thread, Some(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attacker;
pub mod characterize;
pub mod compose;
pub mod generator;
pub mod mix;
pub mod pattern;
pub mod placement;
pub mod profile;
pub mod scenario;
pub mod victim;

pub use attacker::{AttackerKind, AttackerProfile, ChannelTarget};
pub use characterize::{characterize, WorkloadCharacteristics};
pub use compose::ComposedAttacker;
pub use generator::TraceGenerator;
pub use mix::{MixBuilder, MixClass, SlotClass, WorkloadMix};
pub use pattern::{AccessPattern, ClassicPattern, DecoyPattern, FuzzedPattern, RowPressPattern};
pub use placement::{
    AggressorGrid, AggressorPlacement, NeighborPlacement, PlacementRequest, SpreadPlacement,
};
pub use profile::{BenignProfile, IntensityClass, UnknownProfileError};
pub use scenario::{scenario_by_name, scenario_catalog, AttackScenario, UnknownScenarioError};
pub use victim::{KeyTableVictims, SandwichedVictims, VictimLayout, VictimRow};
