//! BreakHammer configuration (Table 2 of the paper).

use bh_dram::{Cycle, TimingParams};
use serde::{Deserialize, Serialize};

/// Configuration parameters of BreakHammer.
///
/// The defaults reproduce Table 2: a 64 ms throttling window, a threat
/// threshold of 32, an outlier threshold of 0.65, and quota-reduction
/// constants `P_oldsuspect = 1` and `P_newsuspect = 10`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakHammerConfig {
    /// Length of one throttling window in DRAM cycles (`TH_window`, 64 ms).
    pub window_cycles: Cycle,
    /// Minimum RowHammer-preventive score for a thread to be considered a
    /// potential suspect (`TH_threat`).
    pub threat_threshold: f64,
    /// Maximum allowed divergence from the mean score before a thread is
    /// marked suspect (`TH_outlier`).
    pub outlier_threshold: f64,
    /// Quota reduction (in cache-miss buffers) applied per window while a
    /// thread *remains* a suspect (`P_oldsuspect`).
    pub old_suspect_penalty: usize,
    /// Quota divisor applied when a thread *becomes* a suspect
    /// (`P_newsuspect`).
    pub new_suspect_divisor: usize,
    /// Number of hardware threads BreakHammer tracks.
    pub num_threads: usize,
    /// Total number of last-level-cache miss buffers (MSHRs) in the system;
    /// an unthrottled thread may use all of them.
    pub total_mshrs: usize,
}

impl BreakHammerConfig {
    /// The configuration of Table 2 for a quad-core system with `total_mshrs`
    /// LLC miss buffers, using `timing` to convert the 64 ms window to cycles.
    pub fn paper_table2(timing: &TimingParams, num_threads: usize, total_mshrs: usize) -> Self {
        BreakHammerConfig {
            window_cycles: timing.ms_to_cycles(64.0),
            threat_threshold: 32.0,
            outlier_threshold: 0.65,
            old_suspect_penalty: 1,
            new_suspect_divisor: 10,
            num_threads,
            total_mshrs,
        }
    }

    /// A configuration with a short window and low thresholds, used by unit
    /// tests so suspect identification can be exercised quickly.
    pub fn fast_test(num_threads: usize, total_mshrs: usize) -> Self {
        BreakHammerConfig {
            window_cycles: 10_000,
            threat_threshold: 4.0,
            outlier_threshold: 0.65,
            old_suspect_penalty: 1,
            new_suspect_divisor: 10,
            num_threads,
            total_mshrs,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.window_cycles == 0 {
            return Err("throttling window must be non-empty".to_string());
        }
        if self.num_threads == 0 {
            return Err("BreakHammer needs at least one hardware thread".to_string());
        }
        if self.total_mshrs == 0 {
            return Err("the system must have at least one cache-miss buffer".to_string());
        }
        if self.new_suspect_divisor < 2 {
            return Err("P_newsuspect must be at least 2 (it divides the quota)".to_string());
        }
        if !(self.outlier_threshold.is_finite() && self.outlier_threshold >= 0.0) {
            return Err("TH_outlier must be a non-negative finite number".to_string());
        }
        if !(self.threat_threshold.is_finite() && self.threat_threshold >= 0.0) {
            return Err("TH_threat must be a non-negative finite number".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_values() {
        let t = TimingParams::ddr5_4800();
        let c = BreakHammerConfig::paper_table2(&t, 4, 64);
        assert_eq!(c.threat_threshold, 32.0);
        assert_eq!(c.outlier_threshold, 0.65);
        assert_eq!(c.old_suspect_penalty, 1);
        assert_eq!(c.new_suspect_divisor, 10);
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.total_mshrs, 64);
        // 64 ms window at 2400 MHz command clock.
        assert!((t.cycles_to_ns(c.window_cycles) / 1_000_000.0 - 64.0).abs() < 0.01);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let t = TimingParams::ddr5_4800();
        let ok = BreakHammerConfig::paper_table2(&t, 4, 64);

        let mut c = ok.clone();
        c.window_cycles = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.num_threads = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.total_mshrs = 0;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.new_suspect_divisor = 1;
        assert!(c.validate().is_err());

        let mut c = ok.clone();
        c.outlier_threshold = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = ok;
        c.threat_threshold = -1.0;
        assert!(c.validate().is_err());
    }
}
