//! X1 positive: a `..` rest pattern at a bh-exhaustive struct's use site.

// bh-exhaustive: `merge` must see every field; new fields must not
// silently drop out of the accumulation.
pub struct Stats {
    pub activations: u64,
    pub refreshes: u64,
}

pub fn merge(stats: &Stats) -> u64 {
    let Stats { activations, .. } = stats;
    *activations
}

pub fn update(base: Stats) -> Stats {
    Stats { activations: 1, ..base }
}
