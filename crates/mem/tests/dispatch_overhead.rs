//! Claw-back guard for the `MemorySystem` layer (PR-4 regression pin).
//!
//! Introducing the multi-channel [`MemorySystem`] facade put channel routing
//! (address-mapping channel bits, per-channel collections, response merging)
//! between the simulation loop and the sole controller of a single-channel
//! system, and the `simulator_throughput` bench regressed measurably. The
//! facade now has a dedicated single-channel fast path that forwards every
//! hot entry point straight to `controllers[0]`; this suite pins it two
//! ways:
//!
//! 1. **behavioural equality** — driving the same request stream through a
//!    1-channel `MemorySystem` and through a bare [`MemoryController`]
//!    produces identical responses and statistics, cycle for cycle;
//! 2. **no measurable per-request work** — an interleaved A/B timing run of
//!    the same dispatch loop must not show the facade meaningfully slower
//!    than the bare controller. The bound is deliberately generous (see
//!    `MAX_OVERHEAD_RATIO`): the guard exists to catch a reintroduced
//!    per-request routing tax (historically ~15-20% end-to-end), not to
//!    flake on scheduler noise — min-of-N interleaved rounds already sheds
//!    most of that.
//!
//! The absolute numbers are tracked over time by the `memory_dispatch/*`
//! entries `bench_hotpath` records in `BENCH_hotpath.json`.

// Wall-clock reads are the point of this regression pin: it times the
// facade dispatch overhead.
#![allow(clippy::disallowed_methods)]

use bh_dram::{DramChannel, DramGeometry, ThreadId, TimingParams};
use bh_mem::{AddressMapping, MemControllerConfig, MemRequest, MemoryController, MemorySystem};
use bh_mitigation::MechanismKind;
use std::time::Instant;

/// A 1-channel `MemorySystem` may be at most this factor slower than the
/// bare controller on the dispatch loop. The fast path's true ratio is ~1.0;
/// 1.5 leaves room for timer noise and cold caches on loaded CI machines
/// while still failing long before a reintroduced routing layer (which costs
/// a decode + indirection on *every* request and tick) could hide in it.
const MAX_OVERHEAD_RATIO: f64 = 1.5;

fn config() -> MemControllerConfig {
    let mut c = MemControllerConfig::paper_table1(4);
    c.read_queue_capacity = 32;
    c.write_queue_capacity = 32;
    c.write_drain_high = 24;
    c.write_drain_low = 8;
    c.mapping = AddressMapping::paper_default();
    c
}

fn controller() -> MemoryController {
    let geometry = DramGeometry::tiny();
    let timing = TimingParams::fast_test();
    let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 256, 7);
    let channel = DramChannel::with_rowhammer(geometry, timing, 256);
    MemoryController::new(config(), channel, mechanism)
}

fn system() -> MemorySystem {
    let geometry = DramGeometry::tiny();
    let timing = TimingParams::fast_test();
    let mechanism = MechanismKind::Graphene.build(&geometry, &timing, 256, 7);
    let channel = DramChannel::with_rowhammer(geometry, timing, 256);
    MemorySystem::new(config(), vec![(channel, mechanism)], None)
}

/// The deterministic dispatch workload both sides run: a spread of reads
/// over rows/banks (via the address pattern) with periodic ticks, returning
/// the served responses in order.
fn drive_controller(ctrl: &mut MemoryController, ops: u64) -> (Vec<u64>, u64) {
    let mut responses = Vec::new();
    let mut buf = Vec::new();
    let mut cycle = 0u64;
    for i in 0..ops {
        let addr = bh_dram::PhysAddr((i % 97) * 4096 + (i % 7) * 64);
        let _ = ctrl.try_enqueue(MemRequest::read(i, ThreadId((i % 4) as usize), addr, cycle));
        for _ in 0..6 {
            ctrl.tick(cycle, None);
            cycle += 1;
        }
        ctrl.drain_responses_into(&mut buf);
        responses.extend(buf.iter().map(|r| r.id));
    }
    (responses, cycle)
}

fn drive_system(mem: &mut MemorySystem, ops: u64) -> (Vec<u64>, u64) {
    let mut responses = Vec::new();
    let mut buf = Vec::new();
    let mut cycle = 0u64;
    for i in 0..ops {
        let addr = bh_dram::PhysAddr((i % 97) * 4096 + (i % 7) * 64);
        // `try_enqueue`, like the controller side: a full queue drops the
        // request on both sides, so the two paths see identical workloads.
        let _ = mem.try_enqueue(MemRequest::read(i, ThreadId((i % 4) as usize), addr, cycle));
        for _ in 0..6 {
            mem.retry_pending();
            mem.tick(cycle);
            cycle += 1;
        }
        mem.drain_responses_into(&mut buf);
        responses.extend(buf.iter().map(|r| r.id));
    }
    (responses, cycle)
}

/// The 1-channel facade must be behaviourally indistinguishable from the
/// bare controller: same responses in the same order, same statistics, same
/// DRAM command counts, same next-event horizons along the way.
#[test]
fn single_channel_system_is_behaviourally_identical_to_bare_controller() {
    let mut ctrl = controller();
    let mut mem = system();
    let (direct_responses, direct_cycle) = drive_controller(&mut ctrl, 3_000);
    let (system_responses, system_cycle) = drive_system(&mut mem, 3_000);
    assert_eq!(direct_responses, system_responses, "response streams diverged");
    assert_eq!(direct_cycle, system_cycle);
    assert_eq!(ctrl.stats(), mem.controller(0).stats(), "controller stats diverged");
    assert_eq!(
        ctrl.channel().stats(),
        mem.controller(0).channel().stats(),
        "DRAM command stats diverged"
    );
    assert_eq!(ctrl.next_event(direct_cycle), mem.next_event(system_cycle));
    // And the aggregate view is exactly the sole controller's view.
    assert_eq!(&mem.aggregate_stats(), mem.controller(0).stats());
}

/// Interleaved A/B timing: the facade's dispatch loop must not be
/// measurably slower than driving the controller directly (claw-back guard
/// for the PR-4 `MemorySystem` dispatch regression).
#[test]
fn single_channel_dispatch_adds_no_measurable_per_request_work() {
    const OPS: u64 = 20_000;
    const ROUNDS: usize = 5;
    // Warm both paths (allocations, branch predictors, lazy tables).
    drive_controller(&mut controller(), 2_000);
    drive_system(&mut system(), 2_000);

    // Interleave A/B rounds so load spikes hit both sides equally; compare
    // the *minimum* per-round time, which sheds transient noise.
    let mut direct_best = u128::MAX;
    let mut system_best = u128::MAX;
    for _ in 0..ROUNDS {
        let mut ctrl = controller();
        let start = Instant::now();
        let _ = drive_controller(&mut ctrl, OPS);
        direct_best = direct_best.min(start.elapsed().as_nanos());

        let mut mem = system();
        let start = Instant::now();
        let _ = drive_system(&mut mem, OPS);
        system_best = system_best.min(start.elapsed().as_nanos());
    }
    let ratio = system_best as f64 / direct_best as f64;
    assert!(
        ratio <= MAX_OVERHEAD_RATIO,
        "1-channel MemorySystem dispatch is {ratio:.2}x the bare controller \
         (direct {direct_best} ns vs system {system_best} ns for {OPS} ops x {ROUNDS} rounds); \
         the single-channel fast path must keep this at ~1.0x (bound {MAX_OVERHEAD_RATIO})"
    );
}
