//! Analytical security model of BreakHammer (§5 and Fig. 5 of the paper).
//!
//! The worst-case memory performance attacker operates *just below*
//! BreakHammer's outlier-detection bound. Expression 2 bounds the
//! RowHammer-preventive score an attack thread can accumulate before being
//! identified as a suspect, as a function of the fraction of hardware threads
//! the attacker controls and of `TH_outlier`:
//!
//! ```text
//! RS_atk_max < (Σ RS_atk + Σ RS_ben) / (N_atk + N_ben) · (1 + TH_outlier)
//! ```
//!
//! Assuming every attack thread pushes its score to the bound, the bound
//! normalised to the average benign score has the closed form implemented by
//! [`max_attacker_score_ratio`]; Fig. 5 plots it for a sweep of `TH_outlier`
//! values.

use serde::{Deserialize, Serialize};

/// One point of the Fig. 5 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityPoint {
    /// Fraction of all hardware threads controlled by the attacker (0..1).
    pub attacker_fraction: f64,
    /// Outlier threshold `TH_outlier`.
    pub outlier_threshold: f64,
    /// Maximum attacker score normalised to the average benign score, or
    /// `None` when the bound diverges (the attacker controls enough threads to
    /// make its behaviour the norm).
    pub max_score_ratio: Option<f64>,
}

/// Maximum RowHammer-preventive score an attack thread can reach before being
/// identified, normalised to the average benign thread score (Expression 2
/// solved for the worst case where every attack thread sits at the bound).
///
/// Returns `None` when `attacker_fraction · (1 + TH_outlier) ≥ 1`, i.e. the
/// bound diverges because the attacker's behaviour dominates the mean.
///
/// # Panics
/// Panics if `attacker_fraction` is not in `[0, 1]` or `outlier_threshold` is
/// negative.
///
/// # Examples
/// ```
/// use bh_core::security::max_attacker_score_ratio;
/// // Paper §5.2: at TH_outlier = 0.65 and 50% attacker threads the attacker
/// // can trigger 4.71x the benign average before detection.
/// let r = max_attacker_score_ratio(0.5, 0.65).unwrap();
/// assert!((r - 4.71).abs() < 0.01);
/// ```
pub fn max_attacker_score_ratio(attacker_fraction: f64, outlier_threshold: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&attacker_fraction), "attacker fraction must be in [0, 1]");
    assert!(outlier_threshold >= 0.0, "TH_outlier must be non-negative");
    let amplification = 1.0 + outlier_threshold;
    let denom = 1.0 - attacker_fraction * amplification;
    if denom <= 0.0 {
        return None;
    }
    Some((1.0 - attacker_fraction) * amplification / denom)
}

/// Generates the full Fig. 5 data set: for each `TH_outlier` in
/// `outlier_thresholds` and each attacker-thread percentage in
/// `0..=100` step `step_percent`, the normalised maximum attacker score.
///
/// # Panics
/// Panics if `step_percent` is zero.
pub fn figure5_series(outlier_thresholds: &[f64], step_percent: usize) -> Vec<SecurityPoint> {
    assert!(step_percent > 0, "step must be positive");
    let mut out = Vec::new();
    for &th in outlier_thresholds {
        let mut pct = 0usize;
        while pct <= 100 {
            let fraction = pct as f64 / 100.0;
            out.push(SecurityPoint {
                attacker_fraction: fraction,
                outlier_threshold: th,
                max_score_ratio: max_attacker_score_ratio(fraction, th),
            });
            pct += step_percent;
        }
    }
    out
}

/// The `TH_outlier` values plotted in Fig. 5 (0.05 to 0.95 in steps of 0.10).
pub fn figure5_outlier_thresholds() -> Vec<f64> {
    (0..10).map(|i| 0.05 + 0.10 * i as f64).collect()
}

/// Minimum fraction of all hardware threads an attacker must control so that a
/// single attack thread can exceed `target_ratio` times the benign average
/// score without being identified (the inverse view of Fig. 5 used in the
/// paper's §5.2 discussion, e.g. "an attacker cannot trigger twice the benign
/// action count unless it uses 90% of all hardware threads").
pub fn required_attacker_fraction(target_ratio: f64, outlier_threshold: f64) -> f64 {
    assert!(target_ratio >= 1.0, "target ratio must be at least 1");
    assert!(outlier_threshold >= 0.0, "TH_outlier must be non-negative");
    let amplification = 1.0 + outlier_threshold;
    // Solve target = (1-f)*A / (1 - f*A) for f.
    let f = (target_ratio - amplification) / (target_ratio * amplification - amplification);
    f.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_points_hold() {
        // §5.2 observation 1: TH_outlier = 0.65, 50% attacker threads -> 4.71x.
        let r = max_attacker_score_ratio(0.5, 0.65).unwrap();
        assert!((r - 4.714).abs() < 0.01, "got {r}");
        // §5.2 observation 2: TH_outlier = 0.05, 90% attacker threads -> 1.90x.
        let r = max_attacker_score_ratio(0.9, 0.05).unwrap();
        assert!((r - 1.909).abs() < 0.01, "got {r}");
    }

    #[test]
    fn lone_attacker_is_tightly_bounded() {
        // With no co-conspirators the bound equals (1 + TH_outlier) at
        // fraction -> 0 (a single thread out of many).
        let r = max_attacker_score_ratio(0.0, 0.65).unwrap();
        assert!((r - 1.65).abs() < 1e-9);
        // One of four threads (the paper's quad-core system).
        let r = max_attacker_score_ratio(0.25, 0.65).unwrap();
        assert!(r < 2.2, "got {r}");
    }

    #[test]
    fn bound_diverges_when_attackers_dominate() {
        // f * (1 + TH) >= 1 -> unbounded.
        assert_eq!(max_attacker_score_ratio(0.7, 0.65), None);
        assert_eq!(max_attacker_score_ratio(1.0, 0.05), None);
        assert!(max_attacker_score_ratio(0.6, 0.65).is_some());
    }

    #[test]
    fn ratio_is_monotonic_in_attacker_fraction() {
        let mut prev = 0.0;
        for pct in 0..=55 {
            let f = pct as f64 / 100.0;
            let r = max_attacker_score_ratio(f, 0.65).unwrap();
            assert!(r >= prev, "ratio must not decrease (f={f})");
            prev = r;
        }
    }

    #[test]
    fn ratio_is_monotonic_in_outlier_threshold() {
        let loose = max_attacker_score_ratio(0.5, 0.95).unwrap();
        let strict = max_attacker_score_ratio(0.5, 0.05).unwrap();
        assert!(loose > strict);
    }

    #[test]
    fn figure5_series_covers_the_grid() {
        let ths = figure5_outlier_thresholds();
        assert_eq!(ths.len(), 10);
        assert!((ths[0] - 0.05).abs() < 1e-9);
        assert!((ths[9] - 0.95).abs() < 1e-9);
        let series = figure5_series(&ths, 10);
        assert_eq!(series.len(), 10 * 11);
        // Every defined point is at least 1 + TH_outlier.
        for p in &series {
            if let Some(r) = p.max_score_ratio {
                assert!(r >= 1.0 + p.outlier_threshold - 1e-9);
            }
        }
    }

    #[test]
    fn required_fraction_matches_paper_claim() {
        // "An attacker cannot trigger twice the preventive-action count of
        // benign applications unless it uses ~90% of all hardware threads"
        // (with a small TH_outlier).
        let f = required_attacker_fraction(2.0, 0.05);
        assert!(f > 0.85, "got {f}");
        // With the default TH_outlier = 0.65, doubling requires fewer threads.
        let f = required_attacker_fraction(2.0, 0.65);
        assert!(f < 0.5, "got {f}");
        // Consistency with the forward model.
        let ratio = max_attacker_score_ratio(f, 0.65).unwrap();
        assert!((ratio - 2.0).abs() < 0.05);
    }
}
