//! Criterion macro-benchmark: end-to-end simulator throughput — a small
//! four-core system (Graphene + BreakHammer, attacker present) run to
//! completion, measuring how many simulated instructions per wall-clock
//! second the reproduction achieves.

use bh_mem::AddressMapping;
use bh_mitigation::MechanismKind;
use bh_sim::{System, SystemConfig};
use bh_workloads::{MixBuilder, MixClass, TraceGenerator};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn bench_system(c: &mut Criterion) {
    let mut config = SystemConfig::fast_test(MechanismKind::Graphene, 256, true);
    config.instructions_per_core = 8_000;

    let generator = TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
    let mut builder = MixBuilder::new(generator);
    builder.benign_entries = 2_000;
    builder.attacker_entries = 2_000;
    let mix = builder.build(MixClass::attack_classes()[0], 0, 42);

    let mut group = c.benchmark_group("simulator_throughput");
    group.sample_size(10);
    group.bench_function("four_core_attack_8k_instructions", |b| {
        b.iter_batched(
            || (config.clone(), mix.traces.clone()),
            |(cfg, traces)| {
                let system = System::with_compiled(cfg, &traces, vec![0, 1, 2]);
                system.run()
            },
            BatchSize::LargeInput,
        );
    });

    // The sharded memory system: the same workload shape distributed over
    // 2 and 4 channels, with the attacker interleaving its pattern across
    // all of them (every channel's tracker stays busy).
    for channels in [2usize, 4] {
        let mut config =
            SystemConfig::fast_test(MechanismKind::Graphene, 256, true).with_channels(channels);
        config.instructions_per_core = 8_000;
        let generator =
            TraceGenerator::new(config.geometry.clone(), AddressMapping::paper_default());
        let mut builder = MixBuilder::new(generator);
        builder.benign_entries = 2_000;
        builder.attacker_entries = 2_000;
        builder = builder
            .with_attacker(bh_workloads::AttackerProfile::paper_default().interleaved_channels());
        let mix = builder.build(MixClass::attack_classes()[0], 0, 42);
        group.bench_function(&format!("four_core_attack_8k_instructions_{channels}ch"), |b| {
            b.iter_batched(
                || (config.clone(), mix.traces.clone()),
                |(cfg, traces)| {
                    let system = System::with_compiled(cfg, &traces, vec![0, 1, 2]);
                    system.run()
                },
                BatchSize::LargeInput,
            );
        });
    }

    // The same single-channel workload with the forward-progress watchdog
    // disabled: the pair bounds the watchdog's epoch-boundary overhead on
    // the default (enabled) configuration above.
    let mut no_watchdog = config.clone();
    no_watchdog.watchdog.enabled = false;
    group.bench_function("four_core_attack_8k_instructions_no_watchdog", |b| {
        b.iter_batched(
            || (no_watchdog.clone(), mix.traces.clone()),
            |(cfg, traces)| {
                let system = System::with_compiled(cfg, &traces, vec![0, 1, 2]);
                system.run()
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
