//! D1 allowlisted: lookup-only HashMap with a justified escape hatch.

// bh-analyze: allow(D1) -- lookup-only interning table, never iterated
use std::collections::HashMap;

pub struct Interner {
    // bh-analyze: allow(D1) -- lookup-only interning table, never iterated
    table: HashMap<String, u32>,
}

impl Interner {
    pub fn get(&self, key: &str) -> Option<u32> {
        self.table.get(key).copied()
    }
}
