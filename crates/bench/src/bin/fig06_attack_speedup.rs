//! Figure 6: BreakHammer's impact on the weighted speedup of benign
//! applications when an attacker is present, at N_RH = 1K, for each of the
//! eight mitigation mechanisms, per workload-mix class (HHHA … LLLA) plus the
//! geometric mean — normalized to the same mechanism without BreakHammer.

use bh_bench::{
    geomean_speedup, maybe_print_config, paper_config, print_results, select, Campaign, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let nrh = bh_bench::figure_nrh(1024);
    let mut campaign = Campaign::new(scale.clone());

    let mechanisms = MechanismKind::paper_mechanisms();
    let mut records = Vec::new();
    for &mech in &mechanisms {
        for bh in [false, true] {
            let config = paper_config(mech, nrh, bh, &scale);
            records.extend(campaign.run(&config, /*attack=*/ true));
        }
    }

    let classes = ["HHHA", "HHMA", "MMMA", "HLLA", "MMLA", "LLLA"];
    let mut table = Table::new(["mechanism", "mix_class", "normalized_weighted_speedup"]);
    for &mech in &mechanisms {
        let with: Vec<_> = select(&records, mech, nrh, true);
        let without: Vec<_> = select(&records, mech, nrh, false);
        for class in classes.iter() {
            let w: Vec<_> = with.iter().copied().filter(|r| r.mix_class == *class).collect();
            let wo: Vec<_> = without.iter().copied().filter(|r| r.mix_class == *class).collect();
            if w.is_empty() || wo.is_empty() {
                continue;
            }
            table.push_row([
                format!("{mech}+BH"),
                class.to_string(),
                fmt3(geomean_speedup(&w) / geomean_speedup(&wo)),
            ]);
        }
        table.push_row([
            format!("{mech}+BH"),
            "geomean".to_string(),
            fmt3(geomean_speedup(&with) / geomean_speedup(&without)),
        ]);
    }
    print_results(
        "Figure 6: normalized weighted speedup of benign applications with an attacker present (N_RH = 1K)",
        &table,
    );
}
