//! Figure 8: weighted-speedup scaling of the eight mitigation mechanisms with
//! and without BreakHammer, with an attacker present, as N_RH decreases —
//! normalized to a baseline with no RowHammer mitigation.

use bh_bench::{
    geomean_speedup, maybe_print_config, paper_config, print_results, select, Campaign, Scale,
};
use bh_mitigation::MechanismKind;
use bh_stats::{fmt3, Table};

fn main() {
    let scale = Scale::from_env();
    maybe_print_config(&scale);
    let mut campaign = Campaign::new(scale.clone());

    // The no-mitigation baseline under attack (independent of N_RH).
    let baseline_cfg = paper_config(MechanismKind::None, scale.nrh_values[0], false, &scale);
    let baseline = campaign.run(&baseline_cfg, true);
    let baseline_ws = geomean_speedup(&baseline.iter().collect::<Vec<_>>());

    let mechanisms = MechanismKind::paper_mechanisms();
    let records =
        campaign.run_matrix(&mechanisms, &scale.nrh_values, &[false, true], /*attack=*/ true);

    let mut table = Table::new(["nrh", "config", "normalized_weighted_speedup"]);
    for &nrh in &scale.nrh_values {
        for &mech in &mechanisms {
            for bh in [false, true] {
                let sel = select(&records, mech, nrh, bh);
                if sel.is_empty() {
                    continue;
                }
                let label = if bh { format!("{mech}+BH") } else { mech.to_string() };
                table.push_row([nrh.to_string(), label, fmt3(geomean_speedup(&sel) / baseline_ws)]);
            }
        }
    }
    print_results(
        "Figure 8: weighted speedup of benign applications vs. N_RH with an attacker present (normalized to no mitigation)",
        &table,
    );
}
